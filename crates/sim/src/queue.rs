//! Pluggable pending-event queues for the [`Engine`](crate::Engine).
//!
//! The engine owns the clock, sequence numbers, and cancellation
//! tombstones; a queue only stores `(at, seq, event)` triples and hands
//! them back in `(at, seq)` order. That split keeps the delivery order —
//! and therefore every trace — bit-identical across backends, so the
//! replay suite can diff a run on one queue against the same seed on
//! another.
//!
//! Two backends:
//!
//! * [`HeapQueue`] — the classic binary heap, `O(log n)` per operation.
//!   Simple and cache-friendly at small scale; the reference
//!   implementation.
//! * [`TimingWheel`] — a hierarchical timing wheel, amortised `O(1)` per
//!   operation at high occupancy. Six levels of 64 one-µs-granularity
//!   slots cover ~19 simulated hours; anything farther out parks in a
//!   sorted overflow map until the wheel rotates near it.
//!
//! [`DynQueue`] wraps both behind one type so the backend can be chosen
//! at runtime from configuration ([`QueueBackend`]).

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

use crate::time::SimTime;

/// A pending-event store ordered by `(at, seq)`.
///
/// Contract: `push` times are monotone with respect to pops — callers
/// must never push an event earlier than the last popped time (the
/// engine's no-scheduling-in-the-past rule). `seq` values are unique and
/// monotone in push order, which makes `(at, seq)` a total order: every
/// backend pops the exact same sequence.
pub trait EventQueue<E> {
    /// Stores an event firing at `at` with tie-break sequence `seq`.
    fn push(&mut self, at: SimTime, seq: u64, event: E);

    /// The `(at, seq)` of the next event to pop, without removing it.
    ///
    /// Takes `&mut self` because a wheel may rotate/cascade internally to
    /// find its front; the observable contents are unchanged.
    fn peek(&mut self) -> Option<(SimTime, u64)>;

    /// Removes and returns the `(at, seq)`-least event.
    fn pop(&mut self) -> Option<(SimTime, u64, E)>;

    /// Number of stored events.
    fn len(&self) -> usize;

    /// True when no events are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends the sequence numbers of every stored event to `out`, in no
    /// particular order — the engine uses this to compact its
    /// cancellation tombstones against the live set.
    fn live_seqs(&self, out: &mut Vec<u64>);
}

// --- Binary-heap backend. ---

struct HeapEntry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within an
        // instant, the first-pushed) entry surfaces first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The `O(log n)` binary-heap backend: the baseline the timing wheel is
/// benchmarked (and differentially tested) against.
pub struct HeapQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
}

impl<E> HeapQueue<E> {
    /// An empty heap queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> for HeapQueue<E> {
    fn push(&mut self, at: SimTime, seq: u64, event: E) {
        self.heap.push(HeapEntry { at, seq, event });
    }

    fn peek(&mut self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|e| (e.at, e.seq))
    }

    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        self.heap.pop().map(|e| (e.at, e.seq, e.event))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn live_seqs(&self, out: &mut Vec<u64>) {
        out.extend(self.heap.iter().map(|e| e.seq));
    }
}

// --- Hierarchical timing wheel. ---

/// log2 of the per-level slot count.
const SLOT_BITS: u32 = 6;
/// Slots per level; level `k` slots are `64^k` µs wide.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. Level `LEVELS - 1` slots are `64^5` µs ≈ 18 minutes
/// wide, so the wheel covers a `64^6` µs ≈ 19-simulated-hour era.
const LEVELS: usize = 6;
/// Width of one wheel era in µs. The wheel holds events inside the
/// `HORIZON`-aligned window containing `base`; later events overflow
/// into the sorted far-future map until `base` enters their era.
const HORIZON: u64 = 1 << (SLOT_BITS as u64 * LEVELS as u64);

struct WheelEntry<E> {
    at: u64,
    seq: u64,
    event: E,
}

/// The amortised-`O(1)` hierarchical timing wheel backend.
///
/// Geometry: `LEVELS` (6) levels of `SLOTS` (64) slots; a level-`k` slot spans
/// `64^k` µs of absolute time, so bits `[6k, 6k+6)` of an event's µs
/// timestamp directly index its slot. An event is placed *radix-style*:
/// at the level of the highest 6-bit group in which its timestamp
/// differs from `base` (the time of the last pop). This gives two strong
/// invariants, both load-bearing for correctness:
///
/// 1. A level-`k` entry shares every bit-group above `k` with `base` and
///    has a group-`k` value at or after `base`'s, so within a level the
///    slot order *is* the firing order — no wrap-around ambiguity.
/// 2. Levels are totally ordered in time: every level-`j` entry fires
///    before every level-`k` entry for `j < k` (the level-`k` entry sits
///    past the next group-`k` boundary; the level-`j` entry does not).
///
/// When level 0 runs dry, the lowest occupied level's earliest slot is
/// drained, `base` advances to its earliest entry, and the slot's
/// entries cascade back down — every re-insertion lands at a strictly
/// lower level, so an event cascades at most `LEVELS - 1` times.
///
/// Events outside `base`'s `HORIZON`-aligned era (~19 simulated hours)
/// wait in a `BTreeMap` keyed by `(at, seq)` and migrate into the wheel
/// when `base` enters their era; every wheel entry fires no later than
/// every overflow entry, so the two never need comparing.
///
/// Determinism: within a level-0 slot (one µs of absolute time) the
/// minimum `seq` is selected by scan, so pops follow the exact global
/// `(at, seq)` order — the same order [`HeapQueue`] produces.
pub struct TimingWheel<E> {
    /// `LEVELS * SLOTS` buckets, flattened as `level * SLOTS + slot`.
    slots: Vec<Vec<WheelEntry<E>>>,
    /// Per-level occupancy bitmask: bit `s` set iff `slots[l][s]` is
    /// non-empty. Finding the next occupied slot is one rotate + ctz.
    occupied: [u64; LEVELS],
    /// Lower bound on every stored firing time; advanced to each popped
    /// event's time and to cascade targets, never moved backwards.
    base: u64,
    /// Entries resident in the wheel levels (excludes the overflow map).
    wheel_len: usize,
    /// Far-future events, sorted by `(at, seq)`.
    overflow: BTreeMap<(u64, u64), E>,
}

impl<E> TimingWheel<E> {
    /// An empty wheel with `base` at time zero.
    pub fn new() -> Self {
        TimingWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            base: 0,
            wheel_len: 0,
            overflow: BTreeMap::new(),
        }
    }

    /// The level event time `t` belongs to relative to `base`: the index
    /// of the highest 6-bit group where they differ ([`LEVELS`] or more
    /// means `t` lies outside `base`'s era and must overflow).
    fn level_for(&self, t: u64) -> usize {
        let diff = t ^ self.base;
        if diff >= HORIZON {
            LEVELS
        } else if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
        }
    }

    /// The slot index of absolute time `t` at `level` — bits
    /// `[6k, 6k+6)` of the µs timestamp.
    fn slot_of(t: u64, level: usize) -> usize {
        ((t >> (SLOT_BITS as u64 * level as u64)) & (SLOTS as u64 - 1)) as usize
    }

    /// Inserts into the wheel proper (caller has checked the era).
    fn insert_wheel(&mut self, at: u64, seq: u64, event: E) {
        let level = self.level_for(at);
        debug_assert!(level < LEVELS, "insert outside the wheel era");
        let slot = Self::slot_of(at, level);
        self.slots[level * SLOTS + slot].push(WheelEntry { at, seq, event });
        self.occupied[level] |= 1 << slot;
        self.wheel_len += 1;
    }

    /// Moves every overflow event whose era `base` has entered into the
    /// wheel. Called whenever `base` may have advanced. Checking only the
    /// head suffices: overflow entries inside `base`'s era sort before
    /// those beyond it.
    fn migrate_overflow(&mut self) {
        while let Some((&(t, _), _)) = self.overflow.first_key_value() {
            if self.level_for(t) >= LEVELS {
                break;
            }
            if let Some(((t, seq), event)) = self.overflow.pop_first() {
                self.insert_wheel(t, seq, event);
            }
        }
    }

    /// The earliest occupied slot of `level`, scanning from the base
    /// position. Valid because every level-`k` entry shares its bit
    /// groups above `k` with `base` and sits at or after `base`'s
    /// group-`k` position — slot order is absolute-time order.
    fn earliest_slot(&self, level: usize) -> Option<usize> {
        let occ = self.occupied[level];
        if occ == 0 {
            return None;
        }
        let b = Self::slot_of(self.base, level);
        // Lossless: `b < SLOTS = 64` by construction of `slot_of`.
        let off = occ.rotate_right(b as u32).trailing_zeros() as usize;
        Some((b + off) % SLOTS)
    }

    /// Position and key of the `(at, seq)`-least entry in a non-empty
    /// flat slot. Level-0 slots hold one instant, so this is the FIFO
    /// tie-break scan; slots are short, making it cheap.
    fn slot_min(&self, flat: usize) -> (usize, u64, u64) {
        let mut best = (0, u64::MAX, u64::MAX);
        for (i, e) in self.slots[flat].iter().enumerate() {
            if (e.at, e.seq) < (best.1, best.2) {
                best = (i, e.at, e.seq);
            }
        }
        best
    }

    /// Rotates/cascades until the earliest pending event sits in a level-0
    /// slot and returns that slot's flat index; `None` when empty.
    fn ensure_front(&mut self) -> Option<usize> {
        loop {
            if self.wheel_len == 0 {
                // Wheel empty: jump the base to the overflow head (if any)
                // and refill from there.
                let (&(t, _), _) = self.overflow.first_key_value()?;
                self.base = t;
                self.migrate_overflow();
                continue;
            }
            if let Some(slot) = self.earliest_slot(0) {
                return Some(slot);
            }
            // Level 0 dry: levels are totally ordered in time, so the
            // earliest pending entry lives in the lowest occupied level's
            // earliest slot. Rebase to that slot's minimum and cascade it
            // down; every drained entry lands at a strictly lower level
            // (the slot's entries share all bit groups at or above the
            // level, so against the new base they differ only below it).
            let level = (1..LEVELS).find(|&l| self.occupied[l] != 0)?;
            let slot = self.earliest_slot(level)?;
            let flat = level * SLOTS + slot;
            let (_, at, _) = self.slot_min(flat);
            self.base = at;
            let entries = std::mem::take(&mut self.slots[flat]);
            self.occupied[level] &= !(1 << (flat - level * SLOTS));
            self.wheel_len -= entries.len();
            for e in entries {
                self.insert_wheel(e.at, e.seq, e.event);
            }
            // Rebasing may have pulled the horizon over overflow entries.
            self.migrate_overflow();
        }
    }
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> for TimingWheel<E> {
    fn push(&mut self, at: SimTime, seq: u64, event: E) {
        let t = at.as_micros();
        debug_assert!(t >= self.base, "push before the last popped time");
        if self.level_for(t) >= LEVELS {
            self.overflow.insert((t, seq), event);
        } else {
            self.insert_wheel(t, seq, event);
        }
    }

    fn peek(&mut self) -> Option<(SimTime, u64)> {
        // Non-mutating on purpose: a peek that cascades would advance
        // `base` past the engine clock, and a later (legal) push between
        // the two would land behind the wheel. The invariants make the
        // front readable in place: the lowest occupied level's earliest
        // slot holds the global minimum, and every wheel entry precedes
        // every overflow entry.
        if self.wheel_len > 0 {
            let level = (0..LEVELS).find(|&l| self.occupied[l] != 0)?;
            let slot = self.earliest_slot(level)?;
            let (_, at, seq) = self.slot_min(level * SLOTS + slot);
            Some((SimTime::from_micros(at), seq))
        } else {
            let (&(at, seq), _) = self.overflow.first_key_value()?;
            Some((SimTime::from_micros(at), seq))
        }
    }

    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        let flat = self.ensure_front()?;
        let (pos, _, _) = self.slot_min(flat);
        let e = self.slots[flat].swap_remove(pos);
        if self.slots[flat].is_empty() {
            // `flat` is a level-0 slot, so it is its own bit index.
            self.occupied[0] &= !(1 << flat);
        }
        self.wheel_len -= 1;
        self.base = e.at;
        // Advancing `base` may move it into the overflow head's era; a
        // later push could then land in the wheel *behind* a stranded
        // overflow entry. Migrating here keeps the invariant that every
        // wheel entry fires no later than every overflow entry.
        self.migrate_overflow();
        Some((SimTime::from_micros(e.at), e.seq, e.event))
    }

    fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    fn live_seqs(&self, out: &mut Vec<u64>) {
        for slot in &self.slots {
            out.extend(slot.iter().map(|e| e.seq));
        }
        out.extend(self.overflow.keys().map(|&(_, seq)| seq));
    }
}

// --- Runtime backend selection. ---

/// Which [`EventQueue`] implementation an engine uses. Both produce
/// bit-identical delivery orders; they differ only in speed profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// [`HeapQueue`]: `O(log n)`, the reference baseline.
    #[default]
    Heap,
    /// [`TimingWheel`]: amortised `O(1)` at high occupancy.
    TimingWheel,
}

impl QueueBackend {
    /// Stable lower-case label for tables and configs.
    pub fn label(self) -> &'static str {
        match self {
            QueueBackend::Heap => "heap",
            QueueBackend::TimingWheel => "wheel",
        }
    }
}

/// A queue whose backend is chosen at runtime — the default queue type of
/// [`Engine`](crate::Engine), so cluster configuration can flip backends
/// without changing any types.
pub enum DynQueue<E> {
    /// Binary-heap backend.
    Heap(HeapQueue<E>),
    /// Timing-wheel backend.
    Wheel(TimingWheel<E>),
}

impl<E> DynQueue<E> {
    /// An empty queue on the given backend.
    pub fn new(backend: QueueBackend) -> Self {
        match backend {
            QueueBackend::Heap => DynQueue::Heap(HeapQueue::new()),
            QueueBackend::TimingWheel => DynQueue::Wheel(TimingWheel::new()),
        }
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self {
            DynQueue::Heap(_) => QueueBackend::Heap,
            DynQueue::Wheel(_) => QueueBackend::TimingWheel,
        }
    }
}

impl<E> Default for DynQueue<E> {
    fn default() -> Self {
        DynQueue::new(QueueBackend::Heap)
    }
}

impl<E> EventQueue<E> for DynQueue<E> {
    #[inline]
    fn push(&mut self, at: SimTime, seq: u64, event: E) {
        match self {
            DynQueue::Heap(q) => q.push(at, seq, event),
            DynQueue::Wheel(q) => q.push(at, seq, event),
        }
    }

    #[inline]
    fn peek(&mut self) -> Option<(SimTime, u64)> {
        match self {
            DynQueue::Heap(q) => q.peek(),
            DynQueue::Wheel(q) => q.peek(),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        match self {
            DynQueue::Heap(q) => q.pop(),
            DynQueue::Wheel(q) => q.pop(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            DynQueue::Heap(q) => q.len(),
            DynQueue::Wheel(q) => q.len(),
        }
    }

    fn live_seqs(&self, out: &mut Vec<u64>) {
        match self {
            DynQueue::Heap(q) => q.live_seqs(out),
            DynQueue::Wheel(q) => q.live_seqs(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<Q: EventQueue<u32>>(q: &mut Q) -> Vec<(u64, u64, u32)> {
        std::iter::from_fn(|| q.pop().map(|(t, s, e)| (t.as_micros(), s, e))).collect()
    }

    fn both() -> Vec<DynQueue<u32>> {
        vec![
            DynQueue::new(QueueBackend::Heap),
            DynQueue::new(QueueBackend::TimingWheel),
        ]
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        for mut q in both() {
            q.push(SimTime::from_micros(30), 0, 3);
            q.push(SimTime::from_micros(10), 1, 1);
            q.push(SimTime::from_micros(10), 2, 2);
            q.push(SimTime::from_micros(20), 3, 9);
            assert_eq!(
                drain(&mut q),
                vec![(10, 1, 1), (10, 2, 2), (20, 3, 9), (30, 0, 3)],
                "{:?}",
                q.backend()
            );
        }
    }

    #[test]
    fn same_instant_fifo_survives_cascades() {
        // Schedule a burst far enough out to land in level >= 1, pop past
        // the cascade boundary, and check the burst stays in seq order.
        for mut q in both() {
            let t = SimTime::from_micros(5_000);
            for seq in 0..100 {
                q.push(t, seq, seq as u32);
            }
            q.push(SimTime::from_micros(1), 100, 999);
            let order = drain(&mut q);
            assert_eq!(order[0], (1, 100, 999));
            let burst: Vec<u32> = order[1..].iter().map(|&(_, _, e)| e).collect();
            assert_eq!(burst, (0..100).collect::<Vec<_>>(), "{:?}", q.backend());
        }
    }

    #[test]
    fn wheel_handles_far_future_overflow() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        // Beyond the ~19h horizon: parks in overflow.
        let far = HORIZON + 123;
        q.push(SimTime::from_micros(far), 0, 7);
        q.push(SimTime::from_micros(50), 1, 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek(), Some((SimTime::from_micros(50), 1)));
        assert_eq!(q.pop().map(|(_, _, e)| e), Some(1));
        // After the near event pops, the far one migrates in on demand.
        assert_eq!(q.pop(), Some((SimTime::from_micros(far), 0, 7)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn wheel_interleaves_overflow_with_late_pushes() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        q.push(SimTime::from_micros(HORIZON), 0, 1);
        // Pop nothing yet; push a nearer event, then one between it and
        // the overflow event, and verify global order.
        q.push(SimTime::from_micros(10), 1, 2);
        assert_eq!(q.pop().map(|(_, _, e)| e), Some(2));
        q.push(SimTime::from_micros(HORIZON - 5), 2, 3);
        assert_eq!(q.pop().map(|(_, _, e)| e), Some(3));
        assert_eq!(q.pop().map(|(_, _, e)| e), Some(1));
    }

    #[test]
    fn peek_matches_pop() {
        for mut q in both() {
            q.push(SimTime::from_micros(40), 0, 4);
            q.push(SimTime::from_micros(20), 1, 2);
            while let Some((at, seq)) = q.peek() {
                let (pat, pseq, _) = q.pop().expect("peeked entry pops");
                assert_eq!((at, seq), (pat, pseq));
            }
            assert!(q.is_empty());
        }
    }

    #[test]
    fn live_seqs_reports_wheel_and_overflow() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        q.push(SimTime::from_micros(5), 10, 0);
        q.push(SimTime::from_micros(2 * HORIZON), 11, 0);
        let mut seqs = Vec::new();
        q.live_seqs(&mut seqs);
        seqs.sort_unstable();
        assert_eq!(seqs, vec![10, 11]);
    }

    #[test]
    fn empty_wheel_behaves() {
        let mut q: TimingWheel<u32> = TimingWheel::new();
        assert!(q.is_empty());
        assert_eq!(q.peek(), None);
        assert!(q.pop().is_none());
    }
}
