//! Deterministic randomness.
//!
//! Every stochastic element of the model (packet loss, workload page
//! writes, user think times, scheduler responses) draws from a [`DetRng`]
//! seeded once per scenario, so experiments are exactly reproducible and
//! differences between runs are attributable to parameters, not noise
//! sources.
//!
//! The generator is a self-contained xoshiro256++ core seeded through
//! SplitMix64, so the simulation has no dependency on platform entropy or
//! external crates and streams are bit-identical across machines.

/// A seeded random-number generator with the distributions the model needs.
///
/// # Examples
///
/// ```
/// use vsim::DetRng;
///
/// let mut a = DetRng::seed(42);
/// let mut b = DetRng::seed(42);
/// assert_eq!(a.range_u64(0, 100), b.range_u64(0, 100));
/// ```
pub struct DetRng {
    state: [u64; 4],
}

/// SplitMix64 step, used only to expand the seed into the xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { state }
    }

    /// The next raw 64-bit output (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator; used to give each subsystem
    /// its own stream so adding draws in one subsystem does not perturb
    /// another.
    pub fn fork(&mut self) -> DetRng {
        DetRng::seed(self.next_u64())
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.bounded(hi - lo)
    }

    /// Lemire-style unbiased bounded draw in `[0, n)`; `n` must be > 0.
    fn bounded(&mut self, n: u64) -> u64 {
        // Rejection sampling on the top of the range keeps the draw
        // uniform without 128-bit multiplies on every call.
        let zone = n.wrapping_neg() % n; // count of biased low values
        loop {
            let x = self.next_u64();
            if x >= zone {
                return x % n;
            }
        }
    }

    /// A uniform integer in `[0, n)`, for indexing.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index into empty collection");
        self.bounded(n as u64) as usize
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// An exponentially distributed float with mean `mean`.
    ///
    /// Used for memoryless inter-arrival times (user actions, request
    /// arrivals).
    pub fn exp_f64(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // u is strictly positive so ln(u) is finite.
        let u = ((self.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64);
        -mean * u.ln()
    }

    /// A uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.unit()
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

impl std::fmt::Debug for DetRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("DetRng")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1_000_000), b.range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed(1);
        let mut b = DetRng::seed(2);
        let va: Vec<u64> = (0..16).map(|_| a.range_u64(0, u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.range_u64(0, u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = DetRng::seed(3);
        let mut child = parent.fork();
        // Draw from the child; the parent's subsequent stream must be
        // unaffected by how much the child draws.
        let mut parent2 = DetRng::seed(3);
        let _child2 = parent2.fork();
        for _ in 0..50 {
            child.unit();
        }
        assert_eq!(parent.range_u64(0, 1 << 40), parent2.range_u64(0, 1 << 40));
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_frequency_is_about_p() {
        let mut r = DetRng::seed(11);
        let hits = (0..20_000).filter(|_| r.chance(0.25)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.25).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn exp_mean_is_about_mean() {
        let mut r = DetRng::seed(13);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.exp_f64(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn unit_is_in_range() {
        let mut r = DetRng::seed(23);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u), "unit out of range: {u}");
        }
    }

    #[test]
    fn range_u64_covers_bounds() {
        let mut r = DetRng::seed(29);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.range_u64(0, 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "small range not covered: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::seed(17);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn index_and_pick_stay_in_bounds() {
        let mut r = DetRng::seed(19);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(r.index(3) < 3);
            assert!(v.contains(r.pick(&v)));
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn index_zero_panics() {
        DetRng::seed(0).index(0);
    }
}
