//! Calibration constants.
//!
//! The paper (§4.1) reports measurements taken on SUN workstations with a
//! 10 MHz 68010 and 2 MB of memory, on a 10 Mbit Ethernet. Those
//! measurements pin the cost model of this simulation. Two kinds of
//! constants live here:
//!
//! * **Mechanistic inputs** — per-packet CPU costs, wire bandwidth, frame
//!   overheads. These are chosen so that the *derived* aggregate rates
//!   (3 s/MB address-space copy, 330 ms/100 KB program load) come out of
//!   the mechanism rather than being asserted directly.
//! * **Directly calibrated service times** — costs the paper reports as a
//!   single number with no visible internal structure (e.g. the 14 ms +
//!   9 ms/object kernel-state copy), which we charge as-is.
//!
//! Tests at the bottom verify that the mechanistic inputs reproduce the
//! paper's aggregate rates.

use crate::time::SimDuration;

// --- Network (10 Mbit Ethernet, §4.1). ---

/// Raw Ethernet bandwidth in bits per second.
pub const ETHERNET_BITS_PER_SEC: u64 = 10_000_000;

/// Per-frame overhead on the wire: preamble (8) + header (14) + CRC (4) +
/// inter-frame gap expressed in byte-times (12).
pub const FRAME_OVERHEAD_BYTES: u64 = 38;

/// Minimum Ethernet frame payload-carrying size (runt padding).
pub const MIN_FRAME_BYTES: u64 = 64;

/// Maximum data payload per V interkernel data packet.
///
/// V "blast" transfers move 32 KB segments as trains of roughly 1 KB data
/// packets; this is the per-packet payload granularity of the model.
pub const DATA_PAYLOAD_BYTES: u64 = 1_024;

/// One-way propagation plus controller latency per frame.
pub const WIRE_LATENCY: SimDuration = SimDuration::from_micros(50);

/// CPU cost to build and transmit one bulk-data packet on a 10 MHz 68010.
///
/// Chosen (with [`PACKET_CPU_RECV`]) so that the derived bulk-copy
/// throughput matches the paper's 3 s per megabyte (§3.1, §4.1).
pub const PACKET_CPU_SEND: SimDuration = SimDuration::from_micros(1_040);

/// CPU cost to receive and process one bulk-data packet.
pub const PACKET_CPU_RECV: SimDuration = SimDuration::from_micros(1_040);

/// CPU cost to send or receive one small control packet (32-byte message,
/// ack, reply-pending). V's remote Send-Receive-Reply took ~2.5 ms on this
/// hardware; two control packets each way at ~550 µs CPU per side plus wire
/// time reproduces that.
pub const SMALL_PACKET_CPU: SimDuration = SimDuration::from_micros(550);

/// Default packet-loss probability per frame. Local Ethernets of the era
/// lost on the order of one frame in 10⁴ outside overload.
pub const DEFAULT_LOSS_PROBABILITY: f64 = 1e-4;

// --- IPC retransmission (§3.1.3, §3.1.4). ---

/// Interval between retransmissions of an unacknowledged Send.
pub const RETRANSMIT_INTERVAL: SimDuration = SimDuration::from_millis(500);

/// Retransmissions before the sender invalidates its logical-host binding
/// cache entry and falls back to a broadcast query ("a small number of
/// retransmissions", §3.1.4).
pub const RETRANSMITS_BEFORE_REBIND: u32 = 3;

/// Retransmissions (post-rebind) before an operation is abandoned and the
/// sender reports failure.
pub const MAX_RETRANSMITS: u32 = 10;

/// How long a replier retains a reply message for possible retransmission;
/// reset whenever the sender re-sends (§3.1.3).
pub const REPLY_RETENTION: SimDuration = SimDuration::from_secs(4);

/// Multiplier applied to the retransmission interval after every
/// unacknowledged retry (capped exponential backoff). The first timer still
/// fires after exactly [`RETRANSMIT_INTERVAL`], so zero-loss timings are
/// unchanged; under sustained loss the interval doubles until it hits
/// [`RETRANSMIT_MAX_INTERVAL`].
pub const RETRANSMIT_BACKOFF: f64 = 2.0;

/// Upper bound on the backed-off retransmission interval.
pub const RETRANSMIT_MAX_INTERVAL: SimDuration = SimDuration::from_secs(2);

// --- Memory (SUN workstation, §4.1). ---

/// Hardware page size of the SUN-2 memory management unit.
pub const PAGE_BYTES: u64 = 2_048;

/// Physical memory per workstation (2 MB, §4.1).
pub const WORKSTATION_MEMORY_BYTES: u64 = 2 * 1024 * 1024;

// --- Remote execution costs (§4.1). ---

/// Paper: time to receive the first response to a multicast request for
/// candidate hosts — 23 ms. We charge the program-manager side as query
/// processing; wire and CPU packet costs make up the rest.
pub const PM_QUERY_PROCESSING: SimDuration = SimDuration::from_millis(21);

/// Paper: setting up *and later destroying* a remote execution environment
/// costs 40 ms total. Setup dominates.
pub const PM_SETUP_ENVIRONMENT: SimDuration = SimDuration::from_millis(20);

/// Teardown portion of the 40 ms (see [`PM_SETUP_ENVIRONMENT`]).
pub const PM_DESTROY_ENVIRONMENT: SimDuration = SimDuration::from_millis(7);

/// File-server per-kilobyte read cost (storage side). Combined with the
/// network per-KB cost this yields the paper's 330 ms per 100 KB program
/// load.
pub const FILE_SERVER_READ_PER_KB: SimDuration = SimDuration::from_micros(450);

// --- Migration costs (§4.1). ---

/// Fixed cost of copying a logical host's kernel-server and program-manager
/// state: 14 ms.
pub const KERNEL_STATE_COPY_BASE: SimDuration = SimDuration::from_millis(14);

/// Additional cost per process and per address space in the migrating
/// logical host: 9 ms each.
pub const KERNEL_STATE_COPY_PER_OBJECT: SimDuration = SimDuration::from_millis(9);

// --- Kernel-operation overheads (§4.1). ---

/// Overhead of resolving the kernel server / program manager through a
/// local group identifier: ~100 µs per operation.
pub const GROUP_ID_LOOKUP_OVERHEAD: SimDuration = SimDuration::from_micros(100);

/// Overhead added to kernel operations to test whether the target process's
/// logical host is frozen: 13 µs.
pub const FREEZE_CHECK_OVERHEAD: SimDuration = SimDuration::from_micros(13);

// --- Scheduling. ---

/// CPU scheduler time-slice for running programs.
pub const CPU_QUANTUM: SimDuration = SimDuration::from_millis(10);

/// Cost of a context switch between processes.
pub const CONTEXT_SWITCH: SimDuration = SimDuration::from_micros(300);

/// Derived: wire time to serialize one frame carrying `payload` bytes.
pub fn frame_wire_time(payload: u64) -> SimDuration {
    let on_wire = (payload + FRAME_OVERHEAD_BYTES).max(MIN_FRAME_BYTES);
    SimDuration::from_micros(on_wire * 8 * 1_000_000 / ETHERNET_BITS_PER_SEC)
}

/// Derived: end-to-end cost of moving one bulk-data packet (sender CPU +
/// wire + receiver CPU), ignoring queueing.
pub fn bulk_packet_time() -> SimDuration {
    PACKET_CPU_SEND + frame_wire_time(DATA_PAYLOAD_BYTES) + WIRE_LATENCY + PACKET_CPU_RECV
}

/// Derived: time to copy `bytes` of address space host-to-host.
///
/// The measured effective rate in the paper — 3 s per megabyte on a 10 Mbit
/// wire that could in principle move it in under a second — tells us the
/// 68010s did not pipeline packet processing with DMA to any useful degree.
/// We therefore charge each packet its full sender-CPU + wire + receiver-CPU
/// cost in sequence, which lands on the paper's rate mechanistically.
pub fn bulk_copy_time(bytes: u64) -> SimDuration {
    if bytes == 0 {
        return SimDuration::ZERO;
    }
    let packets = bytes.div_ceil(DATA_PAYLOAD_BYTES);
    let per_packet = PACKET_CPU_SEND + frame_wire_time(DATA_PAYLOAD_BYTES) + PACKET_CPU_RECV;
    per_packet * packets + WIRE_LATENCY
}

/// Derived: time for a file server to read and ship `bytes` of program
/// image (storage read + network copy), the paper's 330 ms / 100 KB.
pub fn program_load_time(bytes: u64) -> SimDuration {
    let kb = bytes.div_ceil(1024);
    bulk_copy_time(bytes) + FILE_SERVER_READ_PER_KB * kb
}

/// Derived: the paper's kernel/program-manager state copy cost for a
/// logical host with `processes` processes and `spaces` address spaces.
pub fn kernel_state_copy_time(processes: u64, spaces: u64) -> SimDuration {
    KERNEL_STATE_COPY_BASE + KERNEL_STATE_COPY_PER_OBJECT * (processes + spaces)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn bulk_copy_matches_paper_3s_per_mb() {
        let t = bulk_copy_time(MB).as_secs_f64();
        // §3.1: "roughly 3 seconds per megabyte".
        assert!((t - 3.0).abs() < 0.15, "copy of 1 MB took {t:.3}s");
    }

    #[test]
    fn bulk_copy_scales_linearly() {
        let one = bulk_copy_time(MB).as_secs_f64();
        let two = bulk_copy_time(2 * MB).as_secs_f64();
        assert!((two / one - 2.0).abs() < 0.01);
    }

    #[test]
    fn bulk_copy_of_zero_is_zero() {
        assert_eq!(bulk_copy_time(0), SimDuration::ZERO);
    }

    #[test]
    fn program_load_matches_paper_330ms_per_100kb() {
        let t = program_load_time(100 * 1024).as_secs_f64();
        // §4.1: "typically 330 milliseconds per 100 Kbytes of program".
        assert!((t - 0.330).abs() < 0.02, "load of 100 KB took {t:.3}s");
    }

    #[test]
    fn kernel_state_copy_formula() {
        // §4.1: 14 ms plus 9 ms per process and address space. A simple
        // one-process one-team program costs 14 + 9*2 = 32 ms.
        assert_eq!(kernel_state_copy_time(1, 1), SimDuration::from_millis(32));
        assert_eq!(
            kernel_state_copy_time(3, 2),
            SimDuration::from_millis(14 + 45)
        );
    }

    #[test]
    fn frame_wire_time_enforces_min_frame() {
        // A 32-byte V message pads to the 64-byte minimum frame.
        let t = frame_wire_time(8);
        assert_eq!(t, SimDuration::from_micros(64 * 8 / 10));
    }

    #[test]
    fn frame_wire_time_for_bulk_payload() {
        // (1024 + 38) bytes * 8 bits / 10 Mbit/s = 849.6 -> 849 us.
        let t = frame_wire_time(DATA_PAYLOAD_BYTES);
        assert_eq!(t.as_micros(), 849);
    }

    #[test]
    fn worked_example_from_section_3_1_2() {
        // §3.1.2: a 2 MB logical host's first copy takes "roughly
        // 6 seconds"; 0.1 MB takes ~0.3 s; 0.01 MB ~0.03 s.
        assert!((bulk_copy_time(2 * MB).as_secs_f64() - 6.0).abs() < 0.3);
        assert!((bulk_copy_time(MB / 10).as_secs_f64() - 0.3).abs() < 0.02);
        assert!((bulk_copy_time(MB / 100).as_secs_f64() - 0.03).abs() < 0.005);
    }
}
