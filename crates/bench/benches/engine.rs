//! Criterion benchmarks for the discrete-event engine: these measure the
//! *simulator's* performance (events/second of wall time), not simulated
//! quantities — they keep the reproduction fast enough to sweep.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use vsim::{DetRng, Engine, SimDuration};

fn bench_schedule_pop(c: &mut Criterion) {
    c.bench_function("engine/schedule_pop_10k", |b| {
        b.iter_batched(
            Engine::<u64>::new,
            |mut e| {
                for i in 0..10_000u64 {
                    e.schedule_after(SimDuration::from_micros(i % 977), i);
                }
                let mut acc = 0u64;
                while let Some((_, v)) = e.pop() {
                    acc = acc.wrapping_add(v);
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cancellation(c: &mut Criterion) {
    c.bench_function("engine/cancel_half_10k", |b| {
        b.iter_batched(
            || {
                let mut e = Engine::<u64>::new();
                let ids: Vec<_> = (0..10_000u64)
                    .map(|i| e.schedule_after(SimDuration::from_micros(i), i))
                    .collect();
                (e, ids)
            },
            |(mut e, ids)| {
                for id in ids.iter().step_by(2) {
                    e.cancel(*id);
                }
                let mut n = 0;
                while e.pop().is_some() {
                    n += 1;
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/exp_draws_10k", |b| {
        let mut rng = DetRng::seed(7);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += rng.exp_f64(1.0);
            }
            acc
        })
    });
}

criterion_group!(benches, bench_schedule_pop, bench_cancellation, bench_rng);
criterion_main!(benches);
