//! Benchmarks for the discrete-event engine: these measure the
//! *simulator's* performance (events/second of wall time), not simulated
//! quantities — they keep the reproduction fast enough to sweep.

use vbench::bench_case;
use vsim::{DetRng, Engine, SimDuration};

fn main() {
    bench_case("engine/schedule_pop_10k", 3, 30, || {
        let mut e = Engine::<u64>::new();
        for i in 0..10_000u64 {
            e.schedule_after(SimDuration::from_micros(i % 977), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = e.step() {
            acc = acc.wrapping_add(v);
        }
        acc
    });

    bench_case("engine/cancel_half_10k", 3, 30, || {
        let mut e = Engine::<u64>::new();
        let ids: Vec<_> = (0..10_000u64)
            .map(|i| e.schedule_after(SimDuration::from_micros(i), i))
            .collect();
        for id in ids.iter().step_by(2) {
            e.cancel(*id);
        }
        let mut n = 0;
        while e.step().is_some() {
            n += 1;
        }
        n
    });

    let mut rng = DetRng::seed(7);
    bench_case("rng/exp_draws_10k", 3, 30, move || {
        let mut acc = 0.0;
        for _ in 0..10_000 {
            acc += rng.exp_f64(1.0);
        }
        acc
    });
}
