//! Benchmarks of whole-cluster scenarios: wall-clock cost of simulating a
//! remote execution and a full migration (the reproduction must stay cheap
//! enough for parameter sweeps).

use vbench::{bench_case, launch, quiet_cluster};
use vcore::ExecTarget;
use vkernel::Priority;
use vsim::SimDuration;
use vworkload::profiles;

fn main() {
    bench_case("cluster/remote_exec_setup", 1, 10, || {
        let mut cl = quiet_cluster(3, 5);
        let row = profiles::row("make").expect("row");
        cl.exec(
            1,
            profiles::steady_profile(row),
            ExecTarget::AnyIdle,
            Priority::GUEST,
        );
        cl.run_for(SimDuration::from_secs(5));
        assert!(cl.exec_reports[0].success);
        cl.exec_reports.len()
    });

    bench_case("cluster/full_precopy_migration", 1, 10, || {
        let mut cl = quiet_cluster(3, 6);
        let profile = profiles::simulation_profile(SimDuration::from_secs(3600));
        let (lh, _) = launch(
            &mut cl,
            1,
            profile,
            ExecTarget::Named("ws2".into()),
            Priority::GUEST,
        );
        cl.run_for(SimDuration::from_secs(10));
        cl.migrateprog(2, lh, false);
        cl.run_for(SimDuration::from_secs(30));
        assert!(cl.migration_reports[0].success);
        cl.migration_reports.len()
    });
}
