//! Benchmarks for kernel IPC paths: local send/reply round trips, remote
//! frame handling, and binding-cache operations.

use vbench::bench_case;
use vkernel::testkit::Rig;
use vkernel::{BindingCache, LogicalHostId, Priority, ProcessId};
use vmem::SpaceLayout;
use vnet::HostAddr;
use vsim::SimTime;

fn two_process_rig() -> (Rig<u32>, ProcessId, ProcessId) {
    let mut rig: Rig<u32> = Rig::new(2);
    let a = {
        let l = rig.kernel_mut(0).create_logical_host(LogicalHostId(1));
        let t = l.create_space(SpaceLayout::tiny());
        l.create_process(t, Priority::LOCAL, false)
    };
    let b = {
        let l = rig.kernel_mut(1).create_logical_host(LogicalHostId(2));
        let t = l.create_space(SpaceLayout::tiny());
        l.create_process(t, Priority::LOCAL, false)
    };
    rig.kernel_mut(0)
        .learn_binding(LogicalHostId(2), HostAddr(1));
    rig.respond(b, |m| Some(m.body));
    (rig, a, b)
}

fn main() {
    bench_case("kernel/remote_send_reply", 3, 50, || {
        let (mut rig, a, bb) = two_process_rig();
        rig.drive(0, |k, t| k.send(t, a, bb.into(), 1, 0));
        rig.run_until(SimTime::MAX);
        rig.send_results().len()
    });

    bench_case("kernel/local_send_reply", 3, 50, || {
        let mut rig: Rig<u32> = Rig::new(1);
        let a = {
            let l = rig.kernel_mut(0).create_logical_host(LogicalHostId(1));
            let t = l.create_space(SpaceLayout::tiny());
            l.create_process(t, Priority::LOCAL, false)
        };
        let s = {
            let l = rig.kernel_mut(0).create_logical_host(LogicalHostId(2));
            let t = l.create_space(SpaceLayout::tiny());
            l.create_process(t, Priority::LOCAL, false)
        };
        rig.respond(s, |m| Some(m.body));
        rig.drive(0, |k, t| k.send(t, a, s.into(), 1, 0));
        rig.run_until(SimTime::MAX);
        rig.send_results().len()
    });

    let mut cache = BindingCache::new();
    for i in 0..1_000 {
        cache.learn(LogicalHostId(i), HostAddr((i % 32) as u16));
    }
    bench_case("kernel/binding_cache_1k_lookups", 3, 100, move || {
        let mut hits = 0;
        for i in 0..1_000 {
            if cache.lookup(LogicalHostId(i)).is_some() {
                hits += 1;
            }
        }
        hits
    });
}
