//! Benchmarks for the memory model: WWS sampling throughput, the
//! Table 4-1 fitter, and dirty-bit bookkeeping.

use vbench::bench_case;
use vmem::{AddressSpace, SpaceId, SpaceLayout, WwsParams, WwsSampler};
use vsim::{DetRng, SimDuration};
use vworkload::profiles::TABLE_4_1;

fn space() -> AddressSpace {
    AddressSpace::new(
        SpaceId(0),
        SpaceLayout {
            code_bytes: 0,
            init_data_bytes: 0,
            heap_bytes: 768 * 1024,
            stack_bytes: 0,
        },
    )
}

fn main() {
    bench_case("wws/advance_one_simulated_second", 2, 20, || {
        let mut rng = DetRng::seed(3);
        let params = WwsParams {
            hot_kb: 96.0,
            hot_write_kb_per_sec: 550.0,
            cold_kb_per_sec: 15.0,
        };
        let mut sp = space();
        let mut sampler = WwsSampler::new(params, &sp, &mut rng);
        for _ in 0..100 {
            sampler.advance(SimDuration::from_millis(10), &mut sp, &mut rng);
        }
        sp.dirty_pages()
    });

    bench_case("wws/fit_quantized_table_4_1", 2, 50, || {
        TABLE_4_1.iter().map(|r| r.fit().hot_kb).sum::<f64>()
    });

    bench_case("space/take_dirty_all_pages", 2, 50, || {
        let mut sp = space();
        for p in sp.writable_pages() {
            sp.write_page(p);
        }
        sp.take_dirty().len()
    });
}
