//! Criterion benchmarks for the memory model: WWS sampling throughput,
//! the Table 4-1 fitter, and dirty-bit bookkeeping.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use vmem::{AddressSpace, SpaceId, SpaceLayout, WwsParams, WwsSampler};
use vsim::{DetRng, SimDuration};
use vworkload::profiles::TABLE_4_1;

fn space() -> AddressSpace {
    AddressSpace::new(
        SpaceId(0),
        SpaceLayout {
            code_bytes: 0,
            init_data_bytes: 0,
            heap_bytes: 768 * 1024,
            stack_bytes: 0,
        },
    )
}

fn bench_sampler(c: &mut Criterion) {
    c.bench_function("wws/advance_one_simulated_second", |b| {
        b.iter_batched(
            || {
                let mut rng = DetRng::seed(3);
                let params = WwsParams {
                    hot_kb: 96.0,
                    hot_write_kb_per_sec: 550.0,
                    cold_kb_per_sec: 15.0,
                };
                let sp = space();
                let sampler = WwsSampler::new(params, &sp, &mut rng);
                (sampler, sp, rng)
            },
            |(mut sampler, mut sp, mut rng)| {
                for _ in 0..100 {
                    sampler.advance(SimDuration::from_millis(10), &mut sp, &mut rng);
                }
                sp.dirty_pages()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_fit(c: &mut Criterion) {
    c.bench_function("wws/fit_quantized_table_4_1", |b| {
        b.iter(|| TABLE_4_1.iter().map(|r| r.fit().hot_kb).sum::<f64>())
    });
}

fn bench_take_dirty(c: &mut Criterion) {
    c.bench_function("space/take_dirty_all_pages", |b| {
        b.iter_batched(
            || {
                let mut sp = space();
                for p in sp.writable_pages() {
                    sp.write_page(p);
                }
                sp
            },
            |mut sp| sp.take_dirty().len(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_sampler, bench_fit, bench_take_dirty);
criterion_main!(benches);
