//! `vbench` — the experiment harness.
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index); this library holds what they share: table rendering, standard
//! cluster setups, dirty-window measurement, and JSON result emission so
//! EXPERIMENTS.md can be regenerated and diffed.

pub mod hostclock;
pub mod regress;
pub mod spans;

use std::fmt::Display;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Instant;

use vcluster::{Cluster, ClusterConfig};
use vcore::ExecTarget;
use vkernel::{LogicalHostId, Priority};
use vmem::SpaceId;
use vnet::LossModel;
use vsim::{
    Json, MetricsReport, ProfileReport, Samples, SeriesReport, SimDuration, Subsystem, ToJson,
    TraceLevel,
};
use vworkload::ProgramProfile;

pub use hostclock::WallClock;
pub use spans::{
    export_trace, migration_phases, perfetto_json, trace_level, MigrationPhases, SpanSummary,
};

/// A plain-text table, printed in the style of the paper's tables.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn row<D: Display>(&mut self, cells: &[D]) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    line.push_str(&format!("  {:>w$}", c, w = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&format!("{}\n", "-".repeat(total)));
        for r in &self.rows {
            out.push_str(&fmt_row(r));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a fractional value with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a duration in milliseconds with one decimal.
pub fn ms(d: SimDuration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

/// Formats a relative error as a percentage.
pub fn pct(measured: f64, reference: f64) -> String {
    if reference == 0.0 {
        "-".to_string()
    } else {
        format!("{:+.1}%", (measured - reference) / reference * 100.0)
    }
}

/// The uniform command-line contract every bench binary supports —
/// `--config <path.json>` (cell parameters, e.g. a seed override) and
/// `--out <path.json>` (artifact destination) — plus the wall-clock epoch
/// behind the `run` section of every artifact. `vrun` drives the bins
/// through exactly this interface; run by hand, both default off and the
/// binary behaves as before (artifact to `results/<name>.json`).
pub struct BenchArgs {
    /// Parsed `--config` JSON object, when given.
    pub config: Option<Json>,
    /// `--out` artifact path override, when given.
    pub out: Option<PathBuf>,
    /// Wall-clock instant of the first [`args`] call (≈ process start;
    /// every binary calls it first thing in `main`).
    pub started: Instant,
}

static ARGS: OnceLock<BenchArgs> = OnceLock::new();

/// Parses (once) and returns the shared bench arguments. Call it at the
/// top of `main` so the wall-clock epoch covers the whole run; unknown
/// arguments are ignored (e.g. `--trace-level`, handled by
/// [`trace_level`]).
///
/// # Panics
///
/// Exits with code 2 when `--config` names a missing or malformed JSON
/// file, or when `--config`/`--out` lacks its value — a misconfigured
/// sweep cell must fail loudly, not run with default parameters.
pub fn args() -> &'static BenchArgs {
    ARGS.get_or_init(|| {
        let started = Instant::now();
        let mut config_path: Option<String> = None;
        let mut out: Option<PathBuf> = None;
        let mut argv = std::env::args().skip(1);
        while let Some(a) = argv.next() {
            if let Some(v) = a.strip_prefix("--config=") {
                config_path = Some(v.to_string());
            } else if a == "--config" {
                match argv.next() {
                    Some(v) => config_path = Some(v),
                    None => bad_usage("--config needs a path"),
                }
            } else if let Some(v) = a.strip_prefix("--out=") {
                out = Some(PathBuf::from(v));
            } else if a == "--out" {
                match argv.next() {
                    Some(v) => out = Some(PathBuf::from(v)),
                    None => bad_usage("--out needs a path"),
                }
            }
        }
        let config = config_path.map(|p| {
            let text = std::fs::read_to_string(&p).unwrap_or_else(|e| {
                bad_usage(&format!("cannot read --config {p}: {e}"));
            });
            Json::parse(&text).unwrap_or_else(|e| {
                bad_usage(&format!("--config {p}: {e}"));
            })
        });
        BenchArgs {
            config,
            out,
            started,
        }
    })
}

fn bad_usage(msg: &str) -> ! {
    eprintln!("vbench: {msg}");
    std::process::exit(2)
}

/// A `u64` cell parameter from `--config` (e.g. `"seed"`), or `default`.
pub fn config_u64(key: &str, default: u64) -> u64 {
    match args().config.as_ref().and_then(|c| c.get(key)) {
        Some(Json::UInt(u)) => *u,
        Some(v) => v.as_f64().map_or(default, |x| x.max(0.0) as u64),
        None => default,
    }
}

/// A `usize` cell parameter from `--config`, or `default`.
pub fn config_usize(key: &str, default: usize) -> usize {
    usize::try_from(config_u64(key, default as u64)).unwrap_or(default)
}

/// An `f64` cell parameter from `--config`, or `default`.
pub fn config_f64(key: &str, default: f64) -> f64 {
    args()
        .config
        .as_ref()
        .and_then(|c| c.get(key))
        .and_then(Json::as_f64)
        .unwrap_or(default)
}

/// A string cell parameter from `--config`, when present.
pub fn config_str(key: &str) -> Option<String> {
    args()
        .config
        .as_ref()
        .and_then(|c| c.get(key))
        .and_then(Json::as_str)
        .map(str::to_string)
}

/// A lossless default cluster for timing experiments. Trace verbosity
/// follows the shared bench knob (`--trace-level` / `VSIM_TRACE_LEVEL`,
/// see [`trace_level`]), defaulting to the quiet [`TraceLevel::Warn`].
pub fn quiet_cluster(workstations: usize, seed: u64) -> Cluster {
    Cluster::new(ClusterConfig {
        workstations,
        seed,
        loss: LossModel::None,
        trace: trace_level(TraceLevel::Warn),
        ..ClusterConfig::default()
    })
}

/// Starts `profile` on workstation `ws` (targeting `target`) and runs the
/// cluster until the program is created; returns `(lh, team)`.
///
/// # Panics
///
/// Panics if the execution fails to set up within 30 simulated seconds.
pub fn launch(
    c: &mut Cluster,
    ws: usize,
    profile: ProgramProfile,
    target: ExecTarget,
    priority: Priority,
) -> (LogicalHostId, SpaceId) {
    let already = c.exec_reports.len();
    c.exec(ws, profile, target, priority);
    let deadline = c.now() + SimDuration::from_secs(30);
    while c.exec_reports.len() <= already && c.now() < deadline {
        c.run_for(SimDuration::from_millis(100));
    }
    let r = c
        .exec_reports
        .get(already)
        .unwrap_or_else(|| panic!("execution did not complete"));
    assert!(r.success, "execution failed: {r:?}");
    let lh = r.lh.expect("created");
    let i = c.index_of(c.locate(lh).expect("program resident somewhere"));
    let team = c.stations[i].programs[&lh].team;
    (lh, team)
}

/// Measures unique dirty KB generated by program `lh` over `n` windows of
/// length `window`, by clearing and re-reading the MMU dirty bits — the
/// measurement behind Table 4-1.
pub fn measure_dirty_windows(
    c: &mut Cluster,
    lh: LogicalHostId,
    team: SpaceId,
    window: SimDuration,
    n: usize,
) -> Samples {
    let mut samples = Samples::new();
    for _ in 0..n {
        let i = c.index_of(c.locate(lh).expect("program alive"));
        c.stations[i]
            .kernel
            .logical_host_mut(lh)
            .and_then(|l| l.space_mut(team))
            .expect("team space")
            .clear_dirty();
        c.run_for(window);
        let i = c.index_of(c.locate(lh).expect("program alive"));
        let dirty = c.stations[i]
            .kernel
            .logical_host(lh)
            .and_then(|l| l.space(team))
            .expect("team space")
            .dirty_bytes();
        samples.add(dirty as f64 / 1024.0);
    }
    samples
}

/// Directory experiment artifacts are written to: `$VBENCH_JSON` when set,
/// `results/` otherwise.
pub fn artifact_dir() -> std::path::PathBuf {
    std::env::var("VBENCH_JSON")
        .unwrap_or_else(|_| "results".to_string())
        .into()
}

/// Writes one experiment's machine-readable artifact beside its printed
/// table: `<dir>/<name>.json` holding the table rows and a
/// [`MetricsReport`] snapshot of every instrumented component.
pub fn emit(name: &str, rows: &impl ToJson, metrics: &MetricsReport) {
    emit_full(name, rows, metrics, Extras::default());
}

/// Optional artifact sections beyond the table and metrics: causal span
/// percentiles, sampled time series, dispatch-profiler attribution, and
/// extra `run`-section fields (nondeterministic wall-clock derivatives a
/// gate may want, e.g. an overhead ratio).
#[derive(Default)]
pub struct Extras<'a> {
    /// Per-phase duration percentiles (the `spans` section).
    pub spans: Option<&'a SpanSummary>,
    /// Sampled telemetry (the `series` section).
    pub series: Option<&'a SeriesReport>,
    /// Dispatch attribution (the `profile` section).
    pub profile: Option<&'a ProfileReport>,
    /// Extra fields merged into the nondeterministic `run` section.
    pub run_extra: Vec<(&'static str, Json)>,
}

impl<'a> Extras<'a> {
    /// Extras carrying only a `spans` section.
    pub fn spans(spans: &'a SpanSummary) -> Self {
        Extras {
            spans: Some(spans),
            ..Extras::default()
        }
    }
}

/// Like [`emit`], plus the optional [`Extras`] sections.
///
/// Besides the deterministic `experiment` / `table` / `metrics` sections
/// (and the equally deterministic `series` / `profile` extras when the
/// null clock is in use), every artifact carries a `run` section with
/// `sim_events_total` (the engine's delivered-event counter summed across
/// scopes), the wall-clock duration since [`args`] was first called, and
/// the resulting simulated events per wall second. `run` is the only
/// always-nondeterministic section: the doc generator reads `table`
/// alone, and the regression gate reads `table` plus its pinned `run`
/// bands.
pub fn emit_full(name: &str, rows: &impl ToJson, metrics: &MetricsReport, extras: Extras<'_>) {
    let events = metrics.counter_total(Subsystem::Engine, "events_delivered");
    let wall = args().started.elapsed().as_secs_f64();
    let rate = if wall > 0.0 {
        events as f64 / wall
    } else {
        0.0
    };
    let mut run_fields = vec![
        ("sim_events_total", events.to_json()),
        ("wall_secs", wall.to_json()),
        ("events_per_sec", rate.to_json()),
    ];
    run_fields.extend(extras.run_extra);
    let run = Json::obj(run_fields);
    let mut fields = vec![
        ("experiment", name.to_json()),
        ("table", rows.to_json()),
        ("metrics", metrics.to_json()),
        ("run", run),
    ];
    if let Some(s) = extras.spans {
        fields.push(("spans", s.to_json()));
    }
    if let Some(s) = extras.series {
        fields.push(("series", s.to_json()));
    }
    if let Some(p) = extras.profile {
        fields.push(("profile", p.to_json()));
    }
    let artifact = Json::obj(fields);
    let path = match &args().out {
        Some(p) => p.clone(),
        None => artifact_dir().join(format!("{name}.json")),
    };
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&path, artifact.pretty()) {
        eprintln!("vbench: could not write {}: {e}", path.display());
    } else {
        println!("[metrics: {}]", path.display());
    }
}

/// Times `f` over `iters` iterations after `warmup` unmeasured runs and
/// prints mean/min wall time per iteration — the dependency-free harness
/// behind the `benches/` binaries.
pub fn bench_case<T>(name: &str, warmup: usize, iters: usize, mut f: impl FnMut() -> T) {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..iters {
        let t0 = std::time::Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
        total += dt;
    }
    let mean = total / iters as f64;
    println!(
        "{name:<40} mean {:>10.3}us  min {:>10.3}us  ({iters} iters)",
        mean * 1e6,
        best * 1e6
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["alpha", "1"]);
        t.row(&["b", "22"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("alpha"));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        // Title, header, separator, two rows.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(ms(SimDuration::from_micros(23_000)), "23.0");
        assert_eq!(pct(110.0, 100.0), "+10.0%");
        assert_eq!(pct(1.0, 0.0), "-");
    }

    #[test]
    fn launch_and_measure_dirty() {
        use vworkload::profiles;
        let mut c = quiet_cluster(2, 7);
        let row = profiles::row("parser").expect("row");
        let profile = profiles::steady_profile(row);
        let (lh, team) = launch(&mut c, 1, profile, ExecTarget::Local, Priority::LOCAL);
        c.run_for(SimDuration::from_secs(2)); // Warm-up.
        let s = measure_dirty_windows(&mut c, lh, team, SimDuration::from_secs(1), 5);
        assert_eq!(s.count(), 5);
        // The parser dirties ~77 KB/s per Table 4-1.
        let mean = s.mean();
        assert!((mean - 76.8).abs() / 76.8 < 0.25, "mean {mean:.1} KB");
    }
}
