//! Bench regression gate.
//!
//! The simulation is deterministic, so an experiment re-run from the same
//! seed reproduces its numbers exactly; any drift comes from a code
//! change. `results/BASELINE.json` pins the tracked metrics:
//!
//! ```json
//! {
//!   "tolerance": 0.10,
//!   "experiments": [
//!     {
//!       "experiment": "exp_freeze_time",
//!       "tracked": [
//!         { "row": "parser", "column": "freeze_ms", "value": 42.0 }
//!       ]
//!     }
//!   ]
//! }
//! ```
//!
//! Each tracked entry names a column of the experiment's emitted `table`.
//! When the table is an array of row objects, `row` selects the row whose
//! *first* field equals it (the row key — e.g. the program name); when
//! the table is a single object, `row` is omitted and `column` is looked
//! up directly. The `bench_regress` binary re-reads the artifacts and
//! fails when any value drifts past the tolerance.
//!
//! An experiment entry may additionally pin wall-clock speed:
//!
//! ```json
//! { "experiment": "sim_throughput",
//!   "throughput": { "value": 5.0e6, "min_ratio": 0.3 } }
//! ```
//!
//! This checks the artifact's nondeterministic `run.events_per_sec`
//! against the pinned baseline with a *drop-only* band: the gate fails
//! only when the measured rate falls below `value * min_ratio`
//! (`min_ratio` defaults to 0.5). Speedups never fail, and the wide band
//! absorbs machine noise without flaking, while a real order-of-magnitude
//! slowdown — the kind an accidentally quadratic queue would cause —
//! still trips the gate.
//!
//! A third band shape gates a *ratio* computed by the bench itself:
//!
//! ```json
//! { "experiment": "telemetry_overhead",
//!   "overhead": { "column": "sampling_overhead_ratio", "max": 0.10 } }
//! ```
//!
//! This reads `run.<column>` and fails when it exceeds `max` (a list of
//! such bands is also accepted). Unlike the throughput band it needs no
//! pinned absolute rate: the bench measures its variants back-to-back in
//! one process, so the ratio cancels machine speed and the band can be
//! tight (the ≤10% sampling-overhead promise) without flaking.

use vsim::Json;

/// The outcome of checking one tracked metric.
#[derive(Debug, Clone)]
pub struct Check {
    /// Experiment name (artifact stem).
    pub experiment: String,
    /// Row key within the experiment table, if the table is an array.
    pub row: Option<String>,
    /// Column (field) name.
    pub column: String,
    /// The pinned baseline value.
    pub baseline: f64,
    /// The re-measured value (`None` when missing from the artifact).
    pub measured: Option<f64>,
    /// Whether the check passed.
    pub pass: bool,
}

impl Check {
    /// `row.column` or just `column` for object tables.
    pub fn key(&self) -> String {
        match &self.row {
            Some(r) => format!("{r}.{}", self.column),
            None => self.column.clone(),
        }
    }

    /// Relative drift from the baseline, when measured.
    pub fn drift(&self) -> Option<f64> {
        let m = self.measured?;
        if self.baseline == 0.0 {
            None
        } else {
            Some((m - self.baseline) / self.baseline)
        }
    }
}

/// True when `measured` is within `tolerance` (relative) of `baseline`.
/// A zero baseline degenerates to an absolute comparison against the
/// tolerance itself.
pub fn within_tolerance(baseline: f64, measured: f64, tolerance: f64) -> bool {
    if baseline == 0.0 {
        measured.abs() <= tolerance
    } else {
        ((measured - baseline) / baseline).abs() <= tolerance
    }
}

/// The key of a table row: the value of its first field, stringified.
fn row_key(row: &Json) -> Option<String> {
    let Json::Obj(pairs) = row else { return None };
    let (_, v) = pairs.first()?;
    match v {
        Json::Str(s) => Some(s.clone()),
        other => other.as_f64().map(|x| {
            if x.fract() == 0.0 {
                format!("{x:.0}")
            } else {
                format!("{x}")
            }
        }),
    }
}

/// Looks up a tracked value in an emitted experiment `table`.
fn lookup(table: &Json, row: Option<&str>, column: &str) -> Option<f64> {
    match row {
        None => table.get(column)?.as_f64(),
        Some(key) => table
            .as_arr()?
            .iter()
            .find(|r| row_key(r).as_deref() == Some(key))?
            .get(column)?
            .as_f64(),
    }
}

/// Checks every tracked metric of one baseline experiment entry against
/// the experiment's emitted artifact.
pub fn check_experiment(entry: &Json, artifact: &Json, tolerance: f64) -> Vec<Check> {
    let experiment = entry
        .get("experiment")
        .and_then(|e| e.as_str())
        .unwrap_or("?")
        .to_string();
    let table = artifact.get("table");
    let mut out = Vec::new();
    for tracked in entry.get("tracked").and_then(|t| t.as_arr()).unwrap_or(&[]) {
        let row = tracked
            .get("row")
            .and_then(|r| r.as_str())
            .map(str::to_string);
        let column = tracked
            .get("column")
            .and_then(|c| c.as_str())
            .unwrap_or("?")
            .to_string();
        let baseline = tracked
            .get("value")
            .and_then(|v| v.as_f64())
            .unwrap_or(f64::NAN);
        let measured = table.and_then(|t| lookup(t, row.as_deref(), &column));
        let pass = match measured {
            Some(m) => baseline.is_finite() && within_tolerance(baseline, m, tolerance),
            None => false,
        };
        out.push(Check {
            experiment: experiment.clone(),
            row,
            column,
            baseline,
            measured,
            pass,
        });
    }
    if let Some(band) = entry.get("throughput") {
        out.push(check_throughput(&experiment, band, artifact));
    }
    for band in entry
        .get("overhead")
        .map(|b| match b.as_arr() {
            Some(list) => list.to_vec(),
            None => vec![b.clone()],
        })
        .unwrap_or_default()
    {
        out.push(check_overhead(&experiment, &band, artifact));
    }
    out
}

/// Checks an experiment's drop-only throughput band against the
/// artifact's `run.events_per_sec`. Improvements always pass; the check
/// fails only below `value * min_ratio` (default `min_ratio` 0.5).
fn check_throughput(experiment: &str, band: &Json, artifact: &Json) -> Check {
    let baseline = band
        .get("value")
        .and_then(|v| v.as_f64())
        .unwrap_or(f64::NAN);
    let min_ratio = band
        .get("min_ratio")
        .and_then(|r| r.as_f64())
        .unwrap_or(0.5);
    let measured = artifact
        .get("run")
        .and_then(|r| r.get("events_per_sec"))
        .and_then(Json::as_f64);
    let pass = match measured {
        Some(m) => baseline.is_finite() && baseline > 0.0 && m >= baseline * min_ratio,
        None => false,
    };
    Check {
        experiment: experiment.to_string(),
        row: None,
        column: "run.events_per_sec".to_string(),
        baseline,
        measured,
        pass,
    }
}

/// Checks a ceiling band on a bench-computed ratio in the artifact's
/// `run` section: fails when `run.<column>` is missing or exceeds `max`.
fn check_overhead(experiment: &str, band: &Json, artifact: &Json) -> Check {
    let column = band
        .get("column")
        .and_then(|c| c.as_str())
        .unwrap_or("?")
        .to_string();
    let max = band.get("max").and_then(|v| v.as_f64()).unwrap_or(f64::NAN);
    let measured = artifact
        .get("run")
        .and_then(|r| r.get(&column))
        .and_then(Json::as_f64);
    let pass = match measured {
        Some(m) => max.is_finite() && m <= max,
        None => false,
    };
    Check {
        experiment: experiment.to_string(),
        row: None,
        column: format!("run.{column}"),
        baseline: max,
        measured,
        pass,
    }
}

/// Runs the whole gate: for every experiment in `baseline`, loads its
/// artifact via `load` (name → parsed artifact JSON) and checks the
/// tracked metrics. The baseline's top-level `tolerance` (default 0.10)
/// applies to every check.
///
/// # Errors
///
/// Returns an error when the baseline document is malformed; a missing
/// or unreadable artifact is reported as failing checks, not an error,
/// so one broken experiment doesn't mask the rest of the report.
pub fn run_gate(
    baseline: &Json,
    mut load: impl FnMut(&str) -> Result<Json, String>,
) -> Result<Vec<Check>, String> {
    let tolerance = baseline
        .get("tolerance")
        .and_then(|t| t.as_f64())
        .unwrap_or(0.10);
    let experiments = baseline
        .get("experiments")
        .and_then(|e| e.as_arr())
        .ok_or("baseline: missing \"experiments\" array")?;
    let mut checks = Vec::new();
    for entry in experiments {
        let name = entry
            .get("experiment")
            .and_then(|e| e.as_str())
            .ok_or("baseline: experiment entry without \"experiment\" name")?;
        match load(name) {
            Ok(artifact) => checks.extend(check_experiment(entry, &artifact, tolerance)),
            Err(e) => {
                eprintln!("bench_regress: {name}: {e}");
                // Every tracked metric of the missing artifact fails.
                let empty = Json::obj::<&str>([]);
                checks.extend(check_experiment(entry, &empty, tolerance).into_iter().map(
                    |mut c| {
                        c.pass = false;
                        c
                    },
                ));
            }
        }
    }
    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> Json {
        Json::parse(
            r#"{
                "tolerance": 0.10,
                "experiments": [
                    {
                        "experiment": "exp_freeze_time",
                        "tracked": [
                            { "row": "parser", "column": "freeze_ms", "value": 40.0 }
                        ]
                    },
                    {
                        "experiment": "exp_remote_exec",
                        "tracked": [
                            { "column": "selection_ms_measured", "value": 23.0 }
                        ]
                    }
                ]
            }"#,
        )
        .expect("baseline parses")
    }

    fn artifact(freeze_ms: f64) -> Json {
        Json::parse(&format!(
            r#"{{
                "experiment": "exp_freeze_time",
                "table": [
                    {{ "program": "parser", "freeze_ms": {freeze_ms} }},
                    {{ "program": "make", "freeze_ms": 210.0 }}
                ]
            }}"#
        ))
        .expect("artifact parses")
    }

    fn remote_exec_artifact() -> Json {
        Json::parse(
            r#"{
                "experiment": "exp_remote_exec",
                "table": { "selection_ms_measured": 24.1 }
            }"#,
        )
        .expect("artifact parses")
    }

    #[test]
    fn tolerance_window() {
        assert!(within_tolerance(100.0, 109.9, 0.10));
        assert!(within_tolerance(100.0, 90.1, 0.10));
        assert!(!within_tolerance(100.0, 111.0, 0.10));
        assert!(within_tolerance(0.0, 0.05, 0.10));
        assert!(!within_tolerance(0.0, 0.2, 0.10));
    }

    #[test]
    fn matching_run_passes() {
        let checks = run_gate(&baseline(), |name| {
            Ok(match name {
                "exp_freeze_time" => artifact(41.5),
                _ => remote_exec_artifact(),
            })
        })
        .expect("gate runs");
        assert_eq!(checks.len(), 2);
        assert!(checks.iter().all(|c| c.pass), "{checks:?}");
    }

    #[test]
    fn doubled_freeze_time_fails_the_gate() {
        // The injected regression: freeze time 2x the pinned baseline.
        let checks = run_gate(&baseline(), |name| {
            Ok(match name {
                "exp_freeze_time" => artifact(80.0),
                _ => remote_exec_artifact(),
            })
        })
        .expect("gate runs");
        let freeze = checks
            .iter()
            .find(|c| c.column == "freeze_ms")
            .expect("tracked");
        assert!(!freeze.pass, "2x regression must fail");
        assert!((freeze.drift().expect("measured") - 1.0).abs() < 1e-9);
        // The unrelated experiment still passes.
        assert!(checks.iter().any(|c| c.pass));
    }

    #[test]
    fn missing_artifact_fails_its_checks() {
        let checks = run_gate(&baseline(), |name| match name {
            "exp_freeze_time" => Err("no such file".into()),
            _ => Ok(remote_exec_artifact()),
        })
        .expect("gate runs");
        let freeze = checks.iter().find(|c| c.column == "freeze_ms").expect("t");
        assert!(!freeze.pass);
        assert!(freeze.measured.is_none());
    }

    fn throughput_baseline() -> Json {
        Json::parse(
            r#"{
                "experiments": [
                    {
                        "experiment": "sim_throughput",
                        "throughput": { "value": 1000000.0, "min_ratio": 0.3 }
                    }
                ]
            }"#,
        )
        .expect("baseline parses")
    }

    fn throughput_artifact(events_per_sec: f64) -> Json {
        Json::parse(&format!(
            r#"{{
                "experiment": "sim_throughput",
                "table": [],
                "run": {{ "events_per_sec": {events_per_sec} }}
            }}"#
        ))
        .expect("artifact parses")
    }

    #[test]
    fn throughput_band_is_drop_only() {
        // Noise-level slowdown and any speedup pass; a collapse fails.
        for (eps, expect) in [(900_000.0, true), (10_000_000.0, true), (200_000.0, false)] {
            let checks = run_gate(&throughput_baseline(), |_| Ok(throughput_artifact(eps)))
                .expect("gate runs");
            assert_eq!(checks.len(), 1);
            assert_eq!(checks[0].pass, expect, "eps {eps}: {checks:?}");
            assert_eq!(checks[0].column, "run.events_per_sec");
        }
    }

    #[test]
    fn throughput_check_requires_a_run_section() {
        let artifact = Json::parse(r#"{ "experiment": "sim_throughput", "table": [] }"#)
            .expect("artifact parses");
        let checks = run_gate(&throughput_baseline(), |_| Ok(artifact.clone())).expect("gate runs");
        assert!(!checks[0].pass);
        assert!(checks[0].measured.is_none());
    }

    fn overhead_baseline() -> Json {
        Json::parse(
            r#"{
                "experiments": [
                    {
                        "experiment": "telemetry_overhead",
                        "overhead": [
                            { "column": "sampling_overhead_ratio", "max": 0.10 },
                            { "column": "trace_overhead_ratio", "max": 0.25 }
                        ]
                    }
                ]
            }"#,
        )
        .expect("baseline parses")
    }

    fn overhead_artifact(sampling: f64, trace: f64) -> Json {
        Json::parse(&format!(
            r#"{{
                "experiment": "telemetry_overhead",
                "table": [],
                "run": {{
                    "events_per_sec": 1.0e6,
                    "sampling_overhead_ratio": {sampling},
                    "trace_overhead_ratio": {trace}
                }}
            }}"#
        ))
        .expect("artifact parses")
    }

    #[test]
    fn overhead_band_is_a_ceiling() {
        for (sampling, expect) in [(0.03, true), (0.10, true), (0.17, false), (-0.05, true)] {
            let checks = run_gate(&overhead_baseline(), |_| {
                Ok(overhead_artifact(sampling, 0.0))
            })
            .expect("gate runs");
            assert_eq!(checks.len(), 2);
            let c = checks
                .iter()
                .find(|c| c.column == "run.sampling_overhead_ratio")
                .expect("band checked");
            assert_eq!(c.pass, expect, "ratio {sampling}: {c:?}");
        }
    }

    #[test]
    fn overhead_band_fails_when_column_missing() {
        let artifact = Json::parse(r#"{ "experiment": "telemetry_overhead", "run": {} }"#)
            .expect("artifact parses");
        let checks = run_gate(&overhead_baseline(), |_| Ok(artifact.clone())).expect("gate runs");
        assert!(checks.iter().all(|c| !c.pass));
        assert!(checks.iter().all(|c| c.measured.is_none()));
    }

    #[test]
    fn row_lookup_uses_first_field_as_key() {
        let a = artifact(40.0);
        let table = a.get("table").expect("table");
        assert_eq!(lookup(table, Some("make"), "freeze_ms"), Some(210.0));
        assert_eq!(lookup(table, Some("nonesuch"), "freeze_ms"), None);
    }
}
