//! The bench-side real clock for the engine self-profiler.
//!
//! `vsim`'s [`Profiler`](vsim::Profiler) defaults to the deterministic
//! [`NullClock`](vsim::NullClock) so library code never reads host time
//! (the `det-time` lint enforces this). Wall-clock attribution therefore
//! lives here, at the edge: bench binaries inject a [`WallClock`] via
//! `Cluster::set_host_clock` and the same dispatch counters gain real
//! nanosecond attribution. This file carries the repo's only scoped
//! `det-time` exemption (`lint.toml [determinism] allow`).

use std::time::Instant;

use vsim::HostClock;

/// A monotonic host clock backed by [`std::time::Instant`].
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A clock whose origin is the moment of construction.
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl HostClock for WallClock {
    fn now_ns(&mut self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
    fn label(&self) -> &'static str {
        "monotonic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let mut c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
        assert_eq!(c.label(), "monotonic");
    }

    #[test]
    fn profiler_accepts_the_wall_clock() {
        let mut p = vsim::Profiler::with_clock(Box::new(WallClock::new()));
        let s = p.slot(vsim::Subsystem::Engine, "Tick");
        let t0 = p.begin();
        p.end(s, t0);
        let r = p.report();
        assert_eq!(r.clock, "monotonic");
        assert_eq!(r.slot("Tick").unwrap().dispatches, 1);
    }
}
