//! A2 — ablation: Demos/MP forwarding addresses vs V's binding-cache
//! rebinding (§5).
//!
//! "Demos/MP relies on a forwarding address remaining on the machine from
//! which the process was migrated ... this leads to failure when this
//! machine is subsequently rebooted and an old reference is still
//! outstanding. In contrast, our use of logical hosts allows a simple
//! rebinding that works without forwarding addresses."
//!
//! Scenario: a client talks to a server program; the program migrates;
//! the old host reboots; the client (with a stale cache) tries again.

use vbench::{emit, Table};
use vkernel::testkit::Rig;
use vkernel::{KernelConfig, LogicalHostId, Priority, ProcessId};
use vmem::SpaceLayout;
use vnet::{HostAddr, LossModel};
use vsim::SimTime;

struct Row {
    mode: &'static str,
    works_after_migration: bool,
    forwarded_requests: u64,
    residual_entries_on_old_host: usize,
    works_after_old_host_reboot: bool,
}
vsim::impl_to_json!(Row {
    mode,
    works_after_migration,
    forwarded_requests,
    residual_entries_on_old_host,
    works_after_old_host_reboot
});

/// Runs the scenario; `forwarding` selects Demos/MP mode.
fn scenario(forwarding: bool) -> (Row, vsim::MetricsReport) {
    let cfg = KernelConfig {
        use_forwarding_addresses: forwarding,
        // In Demos/MP mode the V recovery paths are off: no new-binding
        // broadcast, and no invalidate-and-broadcast fallback (the rebind
        // threshold is pushed beyond the give-up limit).
        broadcast_new_binding: !forwarding,
        retransmits_before_rebind: if forwarding { u32::MAX } else { 3 },
        ..KernelConfig::default()
    };
    let mut rig: Rig<u32> = Rig::with_loss(3, LossModel::None, cfg);
    // The rig has no cluster runtime, so apply the shared bench trace
    // knob to each kernel directly.
    let level = vbench::trace_level(vsim::TraceLevel::Warn);
    for i in 0..3 {
        *rig.kernel_mut(i).trace_mut() = vsim::Trace::new(level);
    }
    let spawn = |rig: &mut Rig<u32>, i: usize, lh: u32| -> ProcessId {
        let l = rig.kernel_mut(i).create_logical_host(LogicalHostId(lh));
        let team = l.create_space(SpaceLayout::tiny());
        l.create_process(team, Priority::LOCAL, false)
    };
    let victim = spawn(&mut rig, 0, 10);
    let client = spawn(&mut rig, 2, 1);
    rig.kernel_mut(2)
        .learn_binding(LogicalHostId(10), HostAddr(0));
    rig.respond(victim, |m| Some(m.body + 1));

    // Baseline exchange.
    rig.drive(2, |k, t| k.send(t, client, victim.into(), 1, 0));
    rig.run_until(SimTime::MAX);
    assert_eq!(rig.send_results().len(), 1);

    // Migrate lh10 from kernel 0 to kernel 1.
    let temp = LogicalHostId(900);
    rig.kernel_mut(0).freeze(LogicalHostId(10));
    let record = rig.kernel(0).extract_migration_record(LogicalHostId(10));
    {
        let l = rig.kernel_mut(1).create_logical_host(temp);
        for &(sid, layout) in &record.desc.spaces {
            l.create_space_with_id(sid, layout);
        }
    }
    rig.drive(1, |k, t| k.install_migration_record(t, temp, &record));
    if forwarding {
        rig.drive(0, |k, t| {
            k.delete_logical_host_with_forwarding(t, LogicalHostId(10), HostAddr(1))
        });
    } else {
        rig.drive(0, |k, t| k.delete_logical_host(t, LogicalHostId(10)));
    }
    rig.drive(1, |k, t| k.unfreeze_migrated(t, LogicalHostId(10)));
    rig.run_until(SimTime::MAX);

    // Client sends again with whatever cache state it has.
    rig.respond(victim, |m| Some(m.body + 1));
    rig.drive(2, |k, t| k.send(t, client, victim.into(), 2, 0));
    rig.run_until(SimTime::MAX);
    let after_migration = rig.send_results().len() == 2 && rig.send_results()[1].2;
    let forwarded = rig.kernel(0).stats().forwarded_requests;
    let residual = rig.kernel(0).forwarding_entries();

    // Old host reboots: volatile state (forwarding table) is lost. Give
    // the client a stale cache again to model an old reference.
    rig.kernel_mut(0).clear_forwarding();
    rig.kernel_mut(2)
        .learn_binding(LogicalHostId(10), HostAddr(0));
    rig.respond(victim, |m| Some(m.body + 1));
    rig.drive(2, |k, t| k.send(t, client, victim.into(), 3, 0));
    rig.run_until(SimTime::MAX);
    let results = rig.send_results();
    let after_reboot = results.len() == 3 && results[2].2;

    let mut metrics = vsim::MetricsReport::new();
    for i in 0..3 {
        metrics.push(rig.kernel(i).metrics().snapshot(&format!("k{i}")));
    }
    let row = Row {
        mode: if forwarding {
            "forwarding addresses (Demos/MP)"
        } else {
            "binding-cache rebinding (V)"
        },
        works_after_migration: after_migration,
        forwarded_requests: forwarded,
        residual_entries_on_old_host: residual,
        works_after_old_host_reboot: after_reboot,
    };
    (row, metrics)
}

fn main() {
    vbench::args(); // start the wall clock; the scenario pair is fixed
    let (v, v_metrics) = scenario(false);
    let (demos, demos_metrics) = scenario(true);
    let mut metrics = v_metrics.prefixed("v");
    metrics.absorb(demos_metrics.prefixed("demos"));
    let mut t = Table::new(
        "A2: rebinding vs forwarding addresses after migration (§5)",
        &[
            "mode",
            "works after migration",
            "forwarded reqs",
            "residual entries",
            "works after old-host reboot",
        ],
    );
    for r in [&v, &demos] {
        t.row(&[
            r.mode.to_string(),
            r.works_after_migration.to_string(),
            r.forwarded_requests.to_string(),
            r.residual_entries_on_old_host.to_string(),
            r.works_after_old_host_reboot.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nShape check: both work right after migration, but only V's\n\
         broadcast rebinding survives a reboot of the old host — the\n\
         forwarding table was the residual dependency."
    );
    assert!(v.works_after_old_host_reboot);
    assert!(!demos.works_after_old_host_reboot);
    assert_eq!(v.residual_entries_on_old_host, 0);
    emit("abl_forwarding", &[v, demos], &metrics);
}
