//! The bench regression gate (see [`vbench::regress`]).
//!
//! Reads `results/BASELINE.json` (or the path given as the first
//! argument), re-reads each tracked experiment's emitted artifact from
//! the artifact directory, and exits non-zero when any tracked metric
//! drifted past the tolerance. Run the experiment binaries first so the
//! artifacts are fresh.

use vbench::regress::run_gate;
use vbench::Table;
use vsim::Json;

fn main() {
    let baseline_path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| "results/BASELINE.json".to_string());
    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_regress: cannot read {baseline_path}: {e}");
            std::process::exit(2);
        }
    };
    let baseline = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench_regress: {baseline_path}: {e}");
            std::process::exit(2);
        }
    };

    let checks = run_gate(&baseline, |name| {
        let path = vbench::artifact_dir().join(format!("{name}.json"));
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    })
    .unwrap_or_else(|e| {
        eprintln!("bench_regress: {e}");
        std::process::exit(2);
    });

    let mut t = Table::new(
        format!("Bench regression gate vs {baseline_path}"),
        &[
            "experiment",
            "metric",
            "baseline",
            "measured",
            "drift",
            "ok",
        ],
    );
    let mut failed = 0usize;
    for c in &checks {
        if !c.pass {
            failed += 1;
        }
        t.row(&[
            c.experiment.clone(),
            c.key(),
            format!("{:.3}", c.baseline),
            c.measured
                .map(|m| format!("{m:.3}"))
                .unwrap_or_else(|| "missing".into()),
            c.drift()
                .map(|d| format!("{:+.1}%", d * 100.0))
                .unwrap_or_else(|| "-".into()),
            if c.pass { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.print();
    if failed > 0 {
        eprintln!(
            "\nbench_regress: {failed}/{} tracked metrics drifted",
            checks.len()
        );
        std::process::exit(1);
    }
    println!("\nAll {} tracked metrics within tolerance.", checks.len());
}
