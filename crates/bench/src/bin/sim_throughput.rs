//! P1 — raw engine throughput: heap vs timing-wheel queue backends.
//!
//! Drives a bare [`vsim::Engine`] (no cluster above it) with a
//! synthetic-but-deterministic event churn modelled on what the cluster
//! runtime generates: per-host periodic timers that reschedule
//! themselves, bursts of short-delay messages, a steady trickle of
//! cancellations, and occasional far-future timers that exercise the
//! wheel's overflow path. Each cell simulates enough virtual time for a
//! fixed event budget, so the 10-host cell covers hours of simulated
//! time and the 1 000-host cell covers tens of seconds, at identical
//! total work.
//!
//! The artifact `table` holds only deterministic facts (event counts,
//! simulated seconds) and is what the doc generator renders; wall-clock
//! speed — simulated events per wall second and wall seconds per
//! simulated hour, per cell — is printed to stdout, and the artifact's
//! `run.events_per_sec` aggregate is what `bench_regress` gates.

use std::time::Instant;

use vbench::{emit, Table};
use vsim::{DetRng, Engine, MetricsReport, QueueBackend, SimDuration, SimTime};

/// Per-host timer period: 100 events per simulated second per host.
const TICK_US: u64 = 10_000;
/// Simulated events each cell targets (before cancellations).
const EVENTS_PER_CELL: u64 = 2_000_000;

struct Row {
    cell: String,
    hosts: usize,
    backend: String,
    events: u64,
    sim_secs: f64,
}
vsim::impl_to_json!(Row {
    cell,
    hosts,
    backend,
    events,
    sim_secs
});

/// One benchmark cell: `hosts` periodic sources on `backend`, run for
/// `sim_us` of virtual time. Returns (delivered events, wall seconds,
/// the engine's metrics scope for the artifact's `run` section).
fn run_cell(
    cell: &str,
    hosts: usize,
    backend: QueueBackend,
    sim_us: u64,
    seed: u64,
) -> (u64, f64, vsim::ScopeMetrics) {
    let mut e: Engine<u64> = Engine::with_backend(backend);
    let mut rng = DetRng::seed(seed);
    let mut cancellable = Vec::new();
    for h in 0..hosts as u64 {
        // Stagger the first ticks so hosts don't fire in lockstep.
        e.schedule_at(SimTime::from_micros(rng.range_u64(0, TICK_US)), h);
    }
    let limit = SimTime::from_micros(sim_us);
    let wall = Instant::now();
    // High bit marks one-shot events (messages, timeouts): they deliver
    // and die. Only bare host ticks respawn, keeping the live event
    // population constant instead of growing by the burst factor each
    // generation.
    const ONE_SHOT: u64 = 1 << 63;
    let delivered = e.run_until(limit, |e, _now, ev| {
        if ev & ONE_SHOT != 0 {
            return;
        }
        let host = ev;
        // The host's next periodic tick, with ±10% jitter.
        let next = TICK_US + rng.range_u64(0, TICK_US / 5) - TICK_US / 10;
        e.schedule_after(SimDuration::from_micros(next), host);
        match rng.index(100) {
            // A short-delay message burst (IPC-like traffic).
            0..=9 => {
                e.schedule_after(
                    SimDuration::from_micros(rng.range_u64(1, 5_000)),
                    host | ONE_SHOT,
                );
            }
            // A cancellable timeout, later revoked (retransmit-like).
            10..=14 => {
                let id = e.schedule_after(SimDuration::from_micros(50_000), host | ONE_SHOT);
                cancellable.push(id);
            }
            // A far-future timer, well past the wheel's ~19 h era.
            15 => {
                e.schedule_after(SimDuration::from_secs(24 * 3600), host | ONE_SHOT);
            }
            _ => {}
        }
        if cancellable.len() >= 32 {
            for id in cancellable.drain(..) {
                e.cancel(id);
            }
        }
    });
    (
        delivered,
        wall.elapsed().as_secs_f64(),
        e.metrics().snapshot(cell),
    )
}

fn main() {
    vbench::args();
    let seed = vbench::config_u64("seed", 1985);
    let budget = vbench::config_u64("events_per_cell", EVENTS_PER_CELL);
    let host_counts = [10usize, 100, 1000];
    let backends = [QueueBackend::Heap, QueueBackend::TimingWheel];

    let mut rows = Vec::new();
    let mut metrics = MetricsReport::new();
    let mut t = Table::new(
        "P1: engine throughput — deterministic per-cell event totals",
        &["cell", "hosts", "backend", "events", "sim s"],
    );
    println!("cell            events    wall s   ev/wall-s   wall-s/sim-h");
    for &hosts in &host_counts {
        // Fixed event budget per cell: base tick rate is 100 ev/s/host,
        // so `budget` base ticks take `budget / (100 * hosts)` sim secs.
        let sim_us = budget * TICK_US / hosts as u64;
        let mut per_backend = Vec::new();
        for &backend in &backends {
            let cell = format!("{hosts}x{}", backend.label());
            let (events, wall, scope) =
                run_cell(&cell, hosts, backend, sim_us, seed ^ hosts as u64);
            metrics.push(scope);
            let sim_secs = sim_us as f64 / 1e6;
            println!(
                "{cell:<12} {events:>10}  {wall:>8.3}  {:>10.0}  {:>12.3}",
                events as f64 / wall,
                wall * 3600.0 / sim_secs,
            );
            per_backend.push(events);
            t.row(&[
                cell.clone(),
                hosts.to_string(),
                backend.label().to_string(),
                events.to_string(),
                format!("{sim_secs:.1}"),
            ]);
            rows.push(Row {
                cell,
                hosts,
                backend: backend.label().to_string(),
                events,
                sim_secs,
            });
        }
        assert!(
            per_backend.windows(2).all(|w| w[0] == w[1]),
            "{hosts} hosts: backends disagreed on delivered-event count"
        );
    }
    t.print();
    emit("sim_throughput", &rows, &metrics);
}
