//! E4 — §4.1 migration freeze times.
//!
//! The paper's headline result: with pre-copy, "usually 2 precopy
//! iterations were useful"; the residual copied while frozen was between
//! 0.5 and 70 KB, giving suspension times of 5–210 ms (plus the kernel
//! state copy) — versus ~3 s/MB of full freeze for the naive approach.
//!
//! Runs every Table 4-1 program, migrates it mid-run with both strategies,
//! and reports iterations, residual KB, and freeze time. Each migration's
//! causal span tree supplies a per-phase breakdown (selection,
//! initialization, pre-copy rounds, freeze, residual copy, commit,
//! rebind); the first run is also exported as a Perfetto `trace.json`.

use vbench::{
    emit_full, export_trace, launch, migration_phases, MigrationPhases, SpanSummary, Table,
};
use vcluster::ClusterConfig;
use vcore::{ExecTarget, MigrationConfig, MigrationReport, StopPolicy, Strategy};
use vkernel::Priority;
use vnet::LossModel;
use vsim::{SimDuration, SpanTree, TraceLevel};
use vworkload::profiles::{self, TABLE_4_1};
use vworkload::ProgramProfile;

struct Row {
    program: String,
    iterations: usize,
    precopied_kb: u64,
    residual_kb: f64,
    selection_ms: f64,
    initialization_ms: f64,
    precopy_ms: f64,
    residual_copy_ms: f64,
    commit_ms: f64,
    rebind_ms: f64,
    freeze_ms: f64,
    kernel_state_ms: f64,
    migration_ms: f64,
    naive_freeze_ms: f64,
}
vsim::impl_to_json!(Row {
    program,
    iterations,
    precopied_kb,
    residual_kb,
    selection_ms,
    initialization_ms,
    precopy_ms,
    residual_copy_ms,
    commit_ms,
    rebind_ms,
    freeze_ms,
    kernel_state_ms,
    migration_ms,
    naive_freeze_ms
});

fn migrate_once(
    strategy: Strategy,
    name: &str,
    seed: u64,
    trace: TraceLevel,
) -> (MigrationReport, vsim::MetricsReport, SpanTree) {
    let cfg = ClusterConfig {
        workstations: 3,
        seed,
        loss: LossModel::None,
        trace,
        migration: MigrationConfig {
            strategy,
            ..MigrationConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut c = vcluster::Cluster::new(cfg);
    let row = profiles::row(name).expect("known program");
    let profile = ProgramProfile::steady(
        name,
        profiles::layout_for(name),
        row.fit(),
        SimDuration::from_secs(3600),
    );
    let (lh, _team) = launch(
        &mut c,
        1,
        profile,
        ExecTarget::Named("ws2".into()),
        Priority::GUEST,
    );
    // Let it run long enough to populate its working set.
    c.run_for(SimDuration::from_secs(10));
    c.migrateprog(2, lh, false);
    c.run_for(SimDuration::from_secs(60));
    assert_eq!(c.migration_reports.len(), 1, "{name}: migration finished");
    let r = c.migration_reports[0].clone();
    assert!(r.success, "{name}: {r:?}");
    let tree = c.span_tree();
    let m = c.metrics_report();
    (r, m, tree)
}

fn ms(d: SimDuration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    // Phase spans are recorded at Info; `--trace-level detail` adds the
    // per-transaction ipc/serve spans underneath them.
    let base = vbench::config_u64("seed", 2000);
    let level = vbench::trace_level(TraceLevel::Info);
    let mut t = Table::new(
        "E4: migration freeze time per program (pre-copy vs freeze-and-copy)",
        &[
            "program",
            "iters",
            "pre-copied KB",
            "residual KB",
            "freeze ms",
            "kstate ms",
            "naive freeze ms",
            "speedup",
        ],
    );
    let mut phases_table = Table::new(
        "E4b: migration phase breakdown from spans (pre-copy runs, ms)",
        &[
            "program", "select", "init", "pre-copy", "freeze", "residual", "commit", "rebind",
            "total",
        ],
    );
    let mut rows = Vec::new();
    let mut metrics = vsim::MetricsReport::new();
    let mut summary = SpanSummary::new();
    for (i, row) in TABLE_4_1.iter().enumerate() {
        let (pre, pre_metrics, tree) = migrate_once(
            Strategy::PreCopy(StopPolicy::default()),
            row.name,
            base + i as u64,
            level,
        );
        let (naive, naive_metrics, naive_tree) = migrate_once(
            Strategy::FreezeAndCopy,
            row.name,
            base + 1000 + i as u64,
            level,
        );
        metrics.absorb(pre_metrics.prefixed(&format!("{}/precopy", row.name)));
        metrics.absorb(naive_metrics.prefixed(&format!("{}/naive", row.name)));
        let ph: MigrationPhases = migration_phases(&tree)
            .pop()
            .expect("pre-copy run has one migration span");
        // The migrator opens each phase the instant the previous closes,
        // so the phases tile the root span; hold it to 1%.
        let sum = ph.phase_sum().as_secs_f64();
        let total = ph.total.as_secs_f64();
        assert!(
            (sum - total).abs() <= total * 0.01,
            "{}: phase sum {sum}s vs root span {total}s",
            row.name
        );
        summary.absorb_tree(&tree);
        summary.absorb_tree(&naive_tree);
        if i == 0 {
            export_trace("exp_freeze_time", &tree);
        }
        let freeze_ms = pre.freeze_time.as_secs_f64() * 1e3;
        let naive_ms = naive.freeze_time.as_secs_f64() * 1e3;
        t.row(&[
            row.name.to_string(),
            pre.iterations.len().to_string(),
            (pre.precopied_bytes() / 1024).to_string(),
            format!("{:.1}", pre.residual_bytes as f64 / 1024.0),
            format!("{freeze_ms:.0}"),
            format!("{:.0}", pre.kernel_state_cost.as_secs_f64() * 1e3),
            format!("{naive_ms:.0}"),
            format!("{:.0}x", naive_ms / freeze_ms),
        ]);
        phases_table.row(&[
            row.name.to_string(),
            format!("{:.1}", ms(ph.selection)),
            format!("{:.1}", ms(ph.initialization)),
            format!("{:.1} ({}r)", ms(ph.precopy), ph.precopy_rounds),
            format!("{:.1}", ms(ph.freeze)),
            format!("{:.1}", ms(ph.residual_copy)),
            format!("{:.1}", ms(ph.commit)),
            format!("{:.1}", ms(ph.rebind)),
            format!("{:.1}", ms(ph.total)),
        ]);
        rows.push(Row {
            program: row.name.to_string(),
            iterations: pre.iterations.len(),
            precopied_kb: pre.precopied_bytes() / 1024,
            residual_kb: pre.residual_bytes as f64 / 1024.0,
            selection_ms: ms(ph.selection),
            initialization_ms: ms(ph.initialization),
            precopy_ms: ms(ph.precopy),
            residual_copy_ms: ms(ph.residual_copy),
            commit_ms: ms(ph.commit),
            rebind_ms: ms(ph.rebind),
            freeze_ms,
            kernel_state_ms: pre.kernel_state_cost.as_secs_f64() * 1e3,
            migration_ms: ms(ph.total),
            naive_freeze_ms: naive_ms,
        });
    }
    t.print();
    phases_table.print();
    summary.table("E4c: span durations across all runs").print();
    println!(
        "\nPaper: usually 2 pre-copy iterations useful; residual 0.5-70 KB;\n\
         suspension 5-210 ms plus the kernel-state copy. Freeze-and-copy\n\
         suspends for the full ~3 s/MB copy."
    );
    emit_full(
        "exp_freeze_time",
        &rows,
        &metrics,
        vbench::Extras::spans(&summary),
    );
}
