//! E4 — §4.1 migration freeze times.
//!
//! The paper's headline result: with pre-copy, "usually 2 precopy
//! iterations were useful"; the residual copied while frozen was between
//! 0.5 and 70 KB, giving suspension times of 5–210 ms (plus the kernel
//! state copy) — versus ~3 s/MB of full freeze for the naive approach.
//!
//! Runs every Table 4-1 program, migrates it mid-run with both strategies,
//! and reports iterations, residual KB, and freeze time.

use vbench::{emit, launch, Table};
use vcluster::ClusterConfig;
use vcore::{ExecTarget, MigrationConfig, MigrationReport, StopPolicy, Strategy};
use vkernel::Priority;
use vnet::LossModel;
use vsim::SimDuration;
use vworkload::profiles::{self, TABLE_4_1};
use vworkload::ProgramProfile;

struct Row {
    program: String,
    iterations: usize,
    precopied_kb: u64,
    residual_kb: f64,
    residual_copy_ms: f64,
    freeze_ms: f64,
    kernel_state_ms: f64,
    naive_freeze_ms: f64,
}
vsim::impl_to_json!(Row {
    program,
    iterations,
    precopied_kb,
    residual_kb,
    residual_copy_ms,
    freeze_ms,
    kernel_state_ms,
    naive_freeze_ms
});

fn migrate_once(
    strategy: Strategy,
    name: &str,
    seed: u64,
) -> (MigrationReport, vsim::MetricsReport) {
    let cfg = ClusterConfig {
        workstations: 3,
        seed,
        loss: LossModel::None,
        migration: MigrationConfig {
            strategy,
            ..MigrationConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut c = vcluster::Cluster::new(cfg);
    let row = profiles::row(name).expect("known program");
    let profile = ProgramProfile::steady(
        name,
        profiles::layout_for(name),
        row.fit(),
        SimDuration::from_secs(3600),
    );
    let (lh, _team) = launch(
        &mut c,
        1,
        profile,
        ExecTarget::Named("ws2".into()),
        Priority::GUEST,
    );
    // Let it run long enough to populate its working set.
    c.run_for(SimDuration::from_secs(10));
    c.migrateprog(2, lh, false);
    c.run_for(SimDuration::from_secs(60));
    assert_eq!(c.migration_reports.len(), 1, "{name}: migration finished");
    let r = c.migration_reports[0].clone();
    assert!(r.success, "{name}: {r:?}");
    let m = c.metrics_report();
    (r, m)
}

fn main() {
    let mut t = Table::new(
        "E4: migration freeze time per program (pre-copy vs freeze-and-copy)",
        &[
            "program",
            "iters",
            "pre-copied KB",
            "residual KB",
            "freeze ms",
            "kstate ms",
            "naive freeze ms",
            "speedup",
        ],
    );
    let mut rows = Vec::new();
    let mut metrics = vsim::MetricsReport::new();
    for (i, row) in TABLE_4_1.iter().enumerate() {
        let (pre, pre_metrics) = migrate_once(
            Strategy::PreCopy(StopPolicy::default()),
            row.name,
            2000 + i as u64,
        );
        let (naive, naive_metrics) =
            migrate_once(Strategy::FreezeAndCopy, row.name, 3000 + i as u64);
        metrics.absorb(pre_metrics.prefixed(&format!("{}/precopy", row.name)));
        metrics.absorb(naive_metrics.prefixed(&format!("{}/naive", row.name)));
        let freeze_ms = pre.freeze_time.as_secs_f64() * 1e3;
        let naive_ms = naive.freeze_time.as_secs_f64() * 1e3;
        t.row(&[
            row.name.to_string(),
            pre.iterations.len().to_string(),
            (pre.precopied_bytes() / 1024).to_string(),
            format!("{:.1}", pre.residual_bytes as f64 / 1024.0),
            format!("{freeze_ms:.0}"),
            format!("{:.0}", pre.kernel_state_cost.as_secs_f64() * 1e3),
            format!("{naive_ms:.0}"),
            format!("{:.0}x", naive_ms / freeze_ms),
        ]);
        rows.push(Row {
            program: row.name.to_string(),
            iterations: pre.iterations.len(),
            precopied_kb: pre.precopied_bytes() / 1024,
            residual_kb: pre.residual_bytes as f64 / 1024.0,
            residual_copy_ms: 0.0,
            freeze_ms,
            kernel_state_ms: pre.kernel_state_cost.as_secs_f64() * 1e3,
            naive_freeze_ms: naive_ms,
        });
    }
    t.print();
    println!(
        "\nPaper: usually 2 pre-copy iterations useful; residual 0.5-70 KB;\n\
         suspension 5-210 ms plus the kernel-state copy. Freeze-and-copy\n\
         suspends for the full ~3 s/MB copy."
    );
    emit("exp_freeze_time", &rows, &metrics);
}
