//! P3 — where the event loop spends its time: per-subsystem /
//! per-event-kind dispatch attribution from the engine self-profiler.
//!
//! Drives a small but busy cluster (local + remote programs, a live
//! migration, 1 ms telemetry sampling) and reports each event kind's
//! dispatch count and share of all dispatches. The *counts* are a pure
//! function of the seed, so the table is deterministic and renderable by
//! `vrun docs`; wall-clock attribution (from the injected [`WallClock`])
//! lives in the artifact's `profile` section, which is the
//! flame-graph-shaped input `vtrace top` consumes. The `series` section
//! carries the default cluster telemetry for `vtrace aggregate`/`export`.

use vbench::{emit_full, launch, trace_level, Extras, Table, WallClock};
use vcluster::{Cluster, ClusterConfig};
use vcore::ExecTarget;
use vkernel::Priority;
use vnet::LossModel;
use vsim::{SamplingSpec, SimDuration, TraceLevel};
use vworkload::profiles;

struct Row {
    kind: String,
    subsystem: String,
    dispatches: u64,
    share_pct: f64,
}
vsim::impl_to_json!(Row {
    kind,
    subsystem,
    dispatches,
    share_pct
});

fn main() {
    vbench::args();
    let seed = vbench::config_u64("seed", 1985);
    let mut c = Cluster::new(ClusterConfig {
        workstations: 4,
        seed,
        loss: LossModel::None,
        trace: trace_level(TraceLevel::Warn),
        sampling: Some(SamplingSpec::default()),
        ..ClusterConfig::default()
    });
    c.set_host_clock(Box::new(WallClock::new()));

    // A mixed workload: a local compute program, a guest executed
    // remotely, and a migration of that guest mid-run.
    let parser = profiles::row("parser").expect("table 4-1 row");
    let (_, _) = launch(
        &mut c,
        1,
        profiles::steady_profile(parser),
        ExecTarget::Local,
        Priority::LOCAL,
    );
    let (guest, _) = launch(
        &mut c,
        2,
        profiles::simulation_profile(SimDuration::from_secs(120)),
        ExecTarget::Named("ws3".into()),
        Priority::GUEST,
    );
    c.run_for(SimDuration::from_secs(10));
    c.migrateprog(2, guest, false);
    c.run_for(SimDuration::from_secs(50));

    let profile = c.profile_report();
    let series = c.series_report();
    let total = profile.total_dispatches().max(1);
    let mut t = Table::new(
        "P3: dispatch attribution by event kind",
        &["kind", "subsystem", "dispatches", "share %"],
    );
    let mut rows = Vec::new();
    // Sort by dispatches (the deterministic column), not wall time.
    let mut slots = profile.slots.clone();
    slots.sort_by(|a, b| {
        b.dispatches
            .cmp(&a.dispatches)
            .then_with(|| a.kind.cmp(b.kind))
    });
    for s in &slots {
        if s.dispatches == 0 {
            continue;
        }
        let share = s.dispatches as f64 / total as f64 * 100.0;
        t.row(&[
            s.kind.to_string(),
            s.subsystem.to_string(),
            s.dispatches.to_string(),
            format!("{share:.1}"),
        ]);
        rows.push(Row {
            kind: s.kind.to_string(),
            subsystem: s.subsystem.to_string(),
            dispatches: s.dispatches,
            share_pct: (share * 10.0).round() / 10.0,
        });
    }
    t.print();
    println!(
        "\nClock: {} — dispatch counts are seed-deterministic; the\n\
         profile section adds wall-ns attribution from this run.",
        profile.clock
    );

    let metrics = c.metrics_report();
    let extras = Extras {
        series: Some(&series),
        profile: Some(&profile),
        ..Extras::default()
    };
    emit_full("dispatch_attribution", &rows, &metrics, extras);
}
