//! A5 — chaos soak: recovery machinery under seeded fault plans.
//!
//! Sweeps random-but-reproducible fault plans (crashes with reboot,
//! partitions with heal, latency spikes, corruption windows, service
//! restarts) over a 4-workstation cluster running a mixed exec+migration
//! workload, drains every run to quiescence, and audits the cluster-wide
//! invariants: conservation of programs, reclaimed temporaries, drained
//! transaction tables, sane binding caches. A correct cluster survives
//! every seed with zero violations; the cost of survival shows up as
//! retransmissions, migration retries, and dropped frames.

use vbench::{emit_full, SpanSummary, Table};
use vcluster::{Cluster, ClusterConfig, Command};
use vcore::{ExecTarget, MigrationConfig};
use vkernel::Priority;
use vsim::{DetRng, FaultPlan, SimDuration, SimTime, TraceLevel};
use vworkload::profiles;

struct Row {
    seed: u64,
    fault_events: usize,
    faults_injected: u64,
    violations: u64,
    retransmissions: u64,
    migration_retries: u64,
    corrupt_frames_dropped: u64,
    orphaned_transactions: u64,
    quiesced_at_secs: f64,
}
vsim::impl_to_json!(Row {
    seed,
    fault_events,
    faults_injected,
    violations,
    retransmissions,
    migration_retries,
    corrupt_frames_dropped,
    orphaned_transactions,
    quiesced_at_secs
});

fn main() {
    // How many independent fault plans to soak (one cluster run each).
    let seeds = vbench::config_u64("fault_plans", 32);
    let seed_base = vbench::config_u64("seed", 0xC0FFEE);
    // Info keeps the migration phase spans; faults leave some spans open
    // (lost transactions), which is visible data here, not an error.
    let level = vbench::trace_level(TraceLevel::Info);
    let mut rows = Vec::new();
    let mut metrics = vsim::MetricsReport::new();
    let mut summary = SpanSummary::new();
    let mut t = Table::new(
        "A5: chaos soak — seeded fault plans vs cluster invariants",
        &[
            "seed",
            "faults",
            "violations",
            "rexmit",
            "mig retries",
            "corrupt drops",
            "orphaned txns",
            "quiesced s",
        ],
    );
    let mut clean = 0u64;
    for seed in 0..seeds {
        let mut rng = DetRng::seed(seed_base ^ seed);
        let plan = FaultPlan::random(&mut rng, 5, SimDuration::from_secs(30));
        let fault_events = plan.events.len();
        let mut c = Cluster::new(ClusterConfig {
            workstations: 4,
            seed,
            trace: level,
            faults: plan,
            migration: MigrationConfig {
                retry_limit: 3,
                ..MigrationConfig::default()
            },
            ..ClusterConfig::default()
        });
        for ws in 1..=3 {
            c.exec(
                ws,
                profiles::simulation_profile(SimDuration::from_secs(8)),
                ExecTarget::AnyIdle,
                Priority::GUEST,
            );
        }
        for (i, at) in [(1usize, 6u64), (2, 9), (3, 12), (4, 15)] {
            c.at(
                SimTime::from_micros(at * 1_000_000),
                Command::Migrate {
                    ws: i,
                    lh: None,
                    destroy_if_stuck: false,
                },
            );
        }
        c.run_for(SimDuration::from_secs(45));
        while c.pending() > 0 {
            c.run_for(SimDuration::from_secs(30));
        }
        let report = c.audit(true);
        let retransmissions: u64 = c
            .stations
            .iter()
            .map(|w| w.kernel.stats().retransmissions)
            .sum();
        let orphaned: u64 = c
            .stations
            .iter()
            .map(|w| w.kernel.stats().orphaned_transactions)
            .sum();
        let mig_retries = c
            .metrics_report()
            .counter_total(vsim::Subsystem::Migration, "retried");
        let quiesced = c.now().as_secs_f64();
        if report.is_clean() {
            clean += 1;
        }
        metrics.absorb(c.metrics_report().prefixed(&format!("seed{seed}")));
        let tree = c.span_tree();
        summary.absorb_tree(&tree);
        if seed + 1 == seeds {
            vbench::export_trace("abl_chaos", &tree);
        }
        t.row(&[
            seed.to_string(),
            format!("{}/{}", c.stats.faults_injected, fault_events),
            report.violations.len().to_string(),
            retransmissions.to_string(),
            mig_retries.to_string(),
            c.stats.corrupt_frames_dropped.to_string(),
            orphaned.to_string(),
            format!("{quiesced:.0}"),
        ]);
        rows.push(Row {
            seed,
            fault_events,
            faults_injected: c.stats.faults_injected,
            violations: report.violations.len() as u64,
            retransmissions,
            migration_retries: mig_retries,
            corrupt_frames_dropped: c.stats.corrupt_frames_dropped,
            orphaned_transactions: orphaned,
            quiesced_at_secs: quiesced,
        });
    }
    t.print();
    println!(
        "\nShape check: {clean}/{seeds} seeds finish with a clean audit —\n\
         crashes reboot into broadcast re-query (no forwarding state),\n\
         half-built migrations are reclaimed by the target watchdogs, and\n\
         partitions heal into plain retransmission catch-up. The damage is\n\
         visible only in the recovery counters."
    );
    summary
        .table("Span durations across all chaos seeds")
        .print();
    emit_full(
        "abl_chaos",
        &rows,
        &metrics,
        vbench::Extras::spans(&summary),
    );
}
