//! A3 — ablation: packet-loss sensitivity.
//!
//! §3.1.3: during migration "significant overhead may be incurred by
//! retransmissions"; the design leans on reliable IPC so that loss slows
//! things down but never corrupts. Sweeps the Bernoulli loss rate and
//! reports migration success, freeze time, and retransmission counts.

use vbench::{emit, launch, Table};
use vcluster::{Cluster, ClusterConfig};
use vcore::ExecTarget;
use vkernel::Priority;
use vnet::LossModel;
use vsim::{SimDuration, TraceLevel};
use vworkload::profiles;

struct Row {
    loss: f64,
    success: bool,
    freeze_ms: f64,
    total_secs: f64,
    bulk_retransmissions: u64,
    request_retransmissions: u64,
}
vsim::impl_to_json!(Row {
    loss,
    success,
    freeze_ms,
    total_secs,
    bulk_retransmissions,
    request_retransmissions
});

fn main() {
    let mut rows = Vec::new();
    let mut metrics = vsim::MetricsReport::new();
    let mut t = Table::new(
        "A3: migration under packet loss (parser, pre-copy)",
        &[
            "loss rate",
            "success",
            "freeze ms",
            "total s",
            "bulk rexmit",
            "req rexmit",
        ],
    );
    for &loss in &[0.0, 1e-4, 1e-3, 1e-2, 5e-2] {
        let cfg = ClusterConfig {
            workstations: 3,
            seed: vbench::config_u64("seed", 77),
            loss: if loss == 0.0 {
                LossModel::None
            } else {
                LossModel::Bernoulli(loss)
            },
            trace: vbench::trace_level(TraceLevel::Warn),
            ..ClusterConfig::default()
        };
        let mut c = Cluster::new(cfg);
        let row = profiles::row("parser").expect("row");
        let profile = vworkload::ProgramProfile::steady(
            "parser",
            profiles::layout_for("parser"),
            row.fit(),
            SimDuration::from_secs(3600),
        );
        let (lh, _) = launch(
            &mut c,
            1,
            profile,
            ExecTarget::Named("ws2".into()),
            Priority::GUEST,
        );
        c.run_for(SimDuration::from_secs(10));
        c.migrateprog(2, lh, false);
        c.run_for(SimDuration::from_secs(120));
        let r = c
            .migration_reports
            .first()
            .cloned()
            .expect("migration attempted");
        let bulk: u64 = c
            .stations
            .iter()
            .map(|w| w.kernel.stats().bulk_units_retransmitted)
            .sum();
        let req: u64 = c
            .stations
            .iter()
            .map(|w| w.kernel.stats().retransmissions)
            .sum();
        metrics.absorb(c.metrics_report().prefixed(&format!("loss{loss:.0e}")));
        t.row(&[
            format!("{loss:.0e}"),
            r.success.to_string(),
            format!("{:.0}", r.freeze_time.as_secs_f64() * 1e3),
            format!("{:.2}", r.total_time.as_secs_f64()),
            bulk.to_string(),
            req.to_string(),
        ]);
        rows.push(Row {
            loss,
            success: r.success,
            freeze_ms: r.freeze_time.as_secs_f64() * 1e3,
            total_secs: r.total_time.as_secs_f64(),
            bulk_retransmissions: bulk,
            request_retransmissions: req,
        });
    }
    t.print();
    println!(
        "\nShape check: migrations keep succeeding as loss rises; the cost\n\
         shows up as retransmissions and longer copies (each lost 32 KB\n\
         unit waits out an ack timeout), exactly the overhead §3.1.3\n\
         warns about."
    );
    emit("abl_packet_loss", &rows, &metrics);
}
