//! A6 — recovery latency: how fast the lease machinery notices, kills,
//! and replaces a lost program.
//!
//! Each run executes one program remotely (ws1 → ws2) and crashes the
//! holding workstation at a known instant, with a named background fault
//! plan layered on top. Three latencies are read off the merged trace,
//! all in simulated time and therefore exactly reproducible:
//!
//! - **detect** — scripted crash → the origin's `LeaseExpired` record
//!   (silence declared after the lease duration plus grace);
//! - **re-exec** — scripted crash → `ReExecuted` (the origin's liveness
//!   probe goes unanswered and the program is started elsewhere);
//! - **exterminate** — the holder's reboot → `OrphanExterminated` (the
//!   stale copy's first renewal is refused and the orphan destroyed).
//!
//! One row per plan × latency, with p50/p99 across the seed sweep. The
//! `plan` axis is also sweepable from `sweeps/recovery.toml`; run without
//! a `--config` plan, the binary covers every named plan itself.

use vbench::{f1, Table};
use vcluster::{Cluster, ClusterConfig};
use vcore::{ExecTarget, MigrationConfig};
use vkernel::Priority;
use vsim::{
    FaultKind, FaultPlan, FaultTrigger, Samples, SimDuration, SimTime, TraceEvent, TraceLevel,
};
use vworkload::profiles;

/// When the scripted crash silences the holder (ws2).
const CRASH_AT_US: u64 = 8_000_000;
/// How long the holder stays down; reboot is crash + this.
const DOWN_FOR_US: u64 = 40_000_000;

struct Row {
    case: String,
    plan: String,
    metric: &'static str,
    events: u64,
    p50_ms: f64,
    p99_ms: f64,
    clean_audits: u64,
    seeds: u64,
}
vsim::impl_to_json!(Row {
    case,
    plan,
    metric,
    events,
    p50_ms,
    p99_ms,
    clean_audits,
    seeds
});

/// One seeded run: background plan + scripted holder crash, drained to
/// quiescence. Returns (detect, re-exec, exterminate) latencies in ms
/// (None when background chaos pre-empted that path) and audit health.
fn run_one(plan_name: &str, seed: u64) -> ([Option<f64>; 3], bool, Cluster) {
    let crash_at = SimTime::from_micros(CRASH_AT_US);
    let reboot_at = SimTime::from_micros(CRASH_AT_US + DOWN_FOR_US);
    let faults = FaultPlan::by_name(plan_name, seed, 5, SimDuration::from_secs(30))
        .unwrap_or_else(|| {
            eprintln!("abl_recovery: unknown fault plan {plan_name:?}");
            std::process::exit(2)
        })
        .with(
            FaultTrigger::At(crash_at),
            FaultKind::Crash {
                ws: 2,
                reboot_after: Some(SimDuration::from_micros(DOWN_FOR_US)),
            },
        );
    let mut c = Cluster::new(ClusterConfig {
        workstations: 4,
        seed,
        trace: vbench::trace_level(TraceLevel::Info),
        faults,
        migration: MigrationConfig {
            retry_limit: 3,
            ..MigrationConfig::default()
        },
        ..ClusterConfig::default()
    });
    c.exec(
        1,
        profiles::simulation_profile(SimDuration::from_secs(60)),
        ExecTarget::Named("ws2".into()),
        Priority::GUEST,
    );
    c.run_for(SimDuration::from_secs(150));
    for _ in 0..40 {
        if c.pending() == 0 {
            break;
        }
        c.run_for(SimDuration::from_secs(30));
    }
    let clean = c.pending() == 0 && c.audit(true).is_clean();
    c.merge_component_traces();
    let since = |at: SimTime, from: SimTime| (at - from).as_secs_f64() * 1e3;
    let mut detect = None;
    let mut reexec = None;
    let mut exterminate = None;
    for r in c.trace().records() {
        match r.event {
            TraceEvent::LeaseExpired {
                party: "origin", ..
            } if detect.is_none() && r.at >= crash_at => {
                detect = Some(since(r.at, crash_at));
            }
            TraceEvent::ReExecuted { .. } if reexec.is_none() && r.at >= crash_at => {
                reexec = Some(since(r.at, crash_at));
            }
            TraceEvent::OrphanExterminated { .. } if exterminate.is_none() && r.at >= reboot_at => {
                exterminate = Some(since(r.at, reboot_at));
            }
            _ => {}
        }
    }
    ([detect, reexec, exterminate], clean, c)
}

fn main() {
    let seeds = vbench::config_u64("seeds", 12);
    let seed_base = vbench::config_u64("seed", 0x1985);
    // One plan from a sweep cell, or every named plan by default.
    let plans: Vec<String> = match vbench::config_str("plan") {
        Some(p) => vec![p],
        None => [
            "none",
            "crash_storm",
            "partition_heavy",
            "corruption",
            "lease_chaos",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    };
    let mut rows = Vec::new();
    let mut metrics = vsim::MetricsReport::new();
    let mut t = Table::new(
        "A6: recovery latency — crash of the lease holder, by background fault plan",
        &["case", "events", "p50 ms", "p99 ms", "clean audits"],
    );
    for plan in &plans {
        let mut samples = [Samples::new(), Samples::new(), Samples::new()];
        let mut clean = 0u64;
        for s in 0..seeds {
            let ([d, r, e], ok, c) = run_one(plan, seed_base ^ s);
            for (i, lat) in [d, r, e].into_iter().enumerate() {
                if let Some(ms) = lat {
                    samples[i].add(ms);
                }
            }
            if ok {
                clean += 1;
            }
            if s + 1 == seeds {
                metrics.absorb(c.metrics_report().prefixed(plan));
            }
        }
        for (i, metric) in ["detect", "reexec", "exterminate"].into_iter().enumerate() {
            let p50 = samples[i].percentile(50.0).unwrap_or(0.0);
            let p99 = samples[i].percentile(99.0).unwrap_or(0.0);
            t.row(&[
                format!("{plan}/{metric}"),
                samples[i].count().to_string(),
                f1(p50),
                f1(p99),
                format!("{clean}/{seeds}"),
            ]);
            rows.push(Row {
                case: format!("{plan}/{metric}"),
                plan: plan.clone(),
                metric,
                events: samples[i].count() as u64,
                p50_ms: p50,
                p99_ms: p99,
                clean_audits: clean,
                seeds,
            });
        }
    }
    t.print();
    println!(
        "\nShape check: detection waits out the lease duration plus its\n\
         grace window from the holder's last heartbeat, re-execution\n\
         follows within one probe round-trip, and extermination of the\n\
         rebooted stale copy takes about one heartbeat interval — the\n\
         first refused renewal. Background chaos widens the tails (and\n\
         occasionally pre-empts a path: `events` < seeds) but never\n\
         leaves a duplicate live copy behind."
    );
    vbench::emit("abl_recovery", &rows, &metrics);
}
