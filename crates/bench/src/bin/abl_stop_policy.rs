//! A1 — ablation: pre-copy stop policies.
//!
//! §3.1.2 stops "until the number of modified pages is relatively small or
//! until no significant reduction ... is achieved", and §4.1 observes that
//! "usually 2 precopy iterations were useful". This ablation sweeps
//! fixed-N policies against the adaptive default to show why: the first
//! round moves the code, later rounds chase the hot set without shrinking
//! it, so extra rounds cost copy time while barely reducing freeze time.

use vbench::{emit, launch, Table};
use vcluster::{Cluster, ClusterConfig};
use vcore::{ExecTarget, MigrationConfig, MigrationReport, StopPolicy, Strategy};
use vkernel::Priority;
use vnet::LossModel;
use vsim::{SimDuration, TraceLevel};
use vworkload::profiles;

struct Row {
    policy: String,
    iterations: usize,
    copied_kb: u64,
    residual_kb: u64,
    freeze_ms: f64,
    total_secs: f64,
}
vsim::impl_to_json!(Row {
    policy,
    iterations,
    copied_kb,
    residual_kb,
    freeze_ms,
    total_secs
});

fn migrate(policy: StopPolicy, name: &str, seed: u64) -> (MigrationReport, vsim::MetricsReport) {
    let cfg = ClusterConfig {
        workstations: 3,
        seed,
        loss: LossModel::None,
        trace: vbench::trace_level(TraceLevel::Warn),
        migration: MigrationConfig {
            strategy: Strategy::PreCopy(policy),
            ..MigrationConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut c = Cluster::new(cfg);
    let row = profiles::row(name).expect("row");
    let profile = vworkload::ProgramProfile::steady(
        name,
        profiles::layout_for(name),
        row.fit(),
        SimDuration::from_secs(3600),
    );
    let (lh, _) = launch(
        &mut c,
        1,
        profile,
        ExecTarget::Named("ws2".into()),
        Priority::GUEST,
    );
    c.run_for(SimDuration::from_secs(10));
    c.migrateprog(2, lh, false);
    c.run_for(SimDuration::from_secs(120));
    let r = c.migration_reports[0].clone();
    assert!(r.success, "{r:?}");
    let m = c.metrics_report();
    (r, m)
}

fn main() {
    let seed = vbench::config_u64("seed", 7);
    let mut rows = Vec::new();
    let mut metrics = vsim::MetricsReport::new();
    for name in ["parser", "tex"] {
        let mut t = Table::new(
            format!("A1: stop-policy ablation — {name}"),
            &[
                "policy",
                "iters",
                "copied KB",
                "residual KB",
                "freeze ms",
                "total s",
            ],
        );
        let mut policies: Vec<(String, StopPolicy)> = (1..=6u32)
            .map(|n| (format!("fixed-{n}"), StopPolicy::fixed(n)))
            .collect();
        policies.push(("adaptive (paper)".into(), StopPolicy::default()));
        for (label, p) in policies {
            let (r, m) = migrate(p, name, seed + label.len() as u64);
            metrics.absorb(m.prefixed(&format!("{name}/{label}")));
            t.row(&[
                label.clone(),
                r.iterations.len().to_string(),
                (r.precopied_bytes() / 1024).to_string(),
                (r.residual_bytes / 1024).to_string(),
                format!("{:.0}", r.freeze_time.as_secs_f64() * 1e3),
                format!("{:.2}", r.total_time.as_secs_f64()),
            ]);
            rows.push(Row {
                policy: format!("{name}/{label}"),
                iterations: r.iterations.len(),
                copied_kb: r.precopied_bytes() / 1024,
                residual_kb: r.residual_bytes / 1024,
                freeze_ms: r.freeze_time.as_secs_f64() * 1e3,
                total_secs: r.total_time.as_secs_f64(),
            });
        }
        t.print();
    }
    println!(
        "\nShape check: the freeze time collapses after the first round or\n\
         two and then flattens at the hot-set size — exactly why the paper\n\
         found ~2 iterations useful. Extra rounds only add total time."
    );
    emit("abl_stop_policy", &rows, &metrics);
}
