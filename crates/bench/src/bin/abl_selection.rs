//! A4 — ablation: how good is first-responder selection?
//!
//! §2: "Typically, the client receives several responses to the request.
//! Currently, it simply selects the program manager that responds first
//! since that is generally the least loaded host. This simple mechanism
//! provides a decentralized implementation of scheduling that performs
//! well at minimal cost for reasonably small systems."
//!
//! Quantifies "generally": across many `@*` requests into a loaded
//! cluster, how often does the first responder coincide with the
//! least-loaded willing host, and what is the mean excess load when it
//! does not?

use vbench::{emit, Table};
use vcluster::{Cluster, ClusterConfig};
use vcore::ExecTarget;
use vkernel::Priority;
use vnet::LossModel;
use vsim::{DetRng, SimDuration, TraceLevel};
use vworkload::profiles;

struct Results {
    requests: usize,
    picked_least_loaded: usize,
    mean_excess_programs: f64,
    mean_selection_ms: f64,
}
vsim::impl_to_json!(Results {
    requests,
    picked_least_loaded,
    mean_excess_programs,
    mean_selection_ms
});

fn main() {
    let mut c = Cluster::new(ClusterConfig {
        workstations: 8,
        seed: vbench::config_u64("seed", 2024),
        loss: LossModel::None,
        trace: vbench::trace_level(TraceLevel::Warn),
        ..ClusterConfig::default()
    });
    let mut rng = DetRng::seed(vbench::config_u64("rng_seed", 5));

    let mut picked_best = 0usize;
    let mut excess = Vec::new();
    let mut selection_ms = Vec::new();
    let mut requests = 0usize;

    // Keep a rolling background of jobs so hosts differ in load, and
    // sample the cluster state right before each request.
    for k in 0..40 {
        // Background job to skew loads.
        if k % 2 == 0 {
            let name = *rng.pick(&["optimizer", "assembler", "tex"]);
            let row = profiles::row(name).expect("known");
            c.exec(
                1 + rng.index(8),
                profiles::steady_profile(row),
                ExecTarget::AnyIdle,
                Priority::GUEST,
            );
            c.run_for(SimDuration::from_secs(2));
        }

        // Snapshot loads of hosts that would answer an @* from ws1.
        let origin = c.stations[1].host;
        let willing: Vec<(vnet::HostAddr, usize)> = c
            .stations
            .iter()
            .skip(1)
            .filter(|w| w.host != origin)
            .map(|w| (w.host, w.pm.programs().len()))
            .collect();
        let min_load = willing.iter().map(|&(_, l)| l).min().unwrap_or(0);

        let before = c.exec_reports.len();
        let row = profiles::row("make").expect("known");
        c.exec(
            1,
            profiles::steady_profile(row),
            ExecTarget::AnyIdle,
            Priority::GUEST,
        );
        c.run_for(SimDuration::from_secs(5));
        let Some(r) = c.exec_reports.get(before) else {
            continue;
        };
        if !r.success {
            continue;
        }
        requests += 1;
        selection_ms.push(r.selection_time.as_secs_f64() * 1e3);
        let chosen_load = willing
            .iter()
            .find(|&&(h, _)| Some(h) == r.chosen_host)
            .map(|&(_, l)| l)
            .unwrap_or(0);
        if chosen_load == min_load {
            picked_best += 1;
        }
        excess.push((chosen_load - min_load) as f64);
        c.run_for(SimDuration::from_secs(3));
    }

    let mean_excess = excess.iter().sum::<f64>() / excess.len().max(1) as f64;
    let mean_sel = selection_ms.iter().sum::<f64>() / selection_ms.len().max(1) as f64;

    let mut t = Table::new(
        "A4: first-responder selection quality (8 workstations, rolling load)",
        &["quantity", "value"],
    );
    t.row(&["@* requests sampled".to_string(), requests.to_string()]);
    t.row(&[
        "picked a least-loaded host".to_string(),
        format!(
            "{picked_best} ({:.0}%)",
            picked_best as f64 / requests.max(1) as f64 * 100.0
        ),
    ]);
    t.row(&[
        "mean excess load when not (programs)".to_string(),
        format!("{mean_excess:.2}"),
    ]);
    t.row(&[
        "mean selection latency (ms)".to_string(),
        format!("{mean_sel:.1}"),
    ]);
    t.print();
    println!(
        "\nShape check (§2): a busy workstation's manager contends with its\n\
         running programs for the CPU, so idle hosts answer the multicast\n\
         first — which is why first-response selection tracks load at\n\
         essentially zero cost. The paper's \"performs well at minimal\n\
         cost for reasonably small systems\" is this table."
    );
    emit(
        "abl_selection",
        &Results {
            requests,
            picked_least_loaded: picked_best,
            mean_excess_programs: mean_excess,
            mean_selection_ms: mean_sel,
        },
        &c.metrics_report(),
    );
}
