//! E5 — the worked example of §3.1.2.
//!
//! "Consider a logical host consisting of 1 megabyte of code, .25
//! megabytes of initialized (unmodified) data and .75 megabytes of
//! 'active' data. The first copy operation takes roughly 6 seconds. If,
//! during those 6 seconds, .1 megabytes of memory were modified, the
//! second copy operation should take roughly .3 seconds. If during those
//! .3 seconds, .01 megabytes of memory were modified, the third copy
//! operation should take about 0.03 seconds. ... the logical host is
//! frozen for about 0.03 seconds, rather than about 6 seconds."
//!
//! We build exactly that program: a 2 MB logical host whose dirty rate is
//! tuned so ~0.1 MB is modified per 6 s (≈17 KB/s), and run the pre-copy
//! engine against it.

use vbench::{emit_full, export_trace, launch, quiet_cluster, SpanSummary, Table};
use vcore::{ExecTarget, MigrationConfig, StopPolicy, Strategy};
use vkernel::Priority;
use vmem::{SpaceLayout, WwsParams};
use vsim::{SimDuration, TraceLevel};
use vworkload::ProgramProfile;

struct Results {
    rounds: Vec<(u64, f64)>, // (bytes, secs)
    residual_bytes: u64,
    freeze_secs: f64,
    paper_rounds_secs: [f64; 3],
}
vsim::impl_to_json!(Results {
    rounds,
    residual_bytes,
    freeze_secs,
    paper_rounds_secs
});

fn main() {
    let mut cfg = quiet_cluster(3, vbench::config_u64("seed", 42))
        .config()
        .clone();
    cfg.trace = vbench::trace_level(TraceLevel::Info);
    cfg.migration = MigrationConfig {
        strategy: Strategy::PreCopy(StopPolicy {
            max_iterations: 3,
            threshold_bytes: 16 * 1024,
            min_shrink: 0.95,
        }),
        ..MigrationConfig::default()
    };
    let mut c = vcluster::Cluster::new(cfg);

    // The §3.1.2 logical host, dirtying ~17 KB/s so that ~0.1 MB changes
    // during a 6 s copy.
    let profile = ProgramProfile::steady(
        "worked-example",
        SpaceLayout::section_3_1_2_example(),
        WwsParams {
            hot_kb: 0.0,
            hot_write_kb_per_sec: 0.0,
            cold_kb_per_sec: 17.0,
        },
        SimDuration::from_secs(3600),
    );
    let (lh, _) = launch(
        &mut c,
        1,
        profile,
        ExecTarget::Named("ws2".into()),
        Priority::GUEST,
    );
    c.run_for(SimDuration::from_secs(5));
    c.migrateprog(2, lh, false);
    c.run_for(SimDuration::from_secs(60));
    let r = c.migration_reports[0].clone();
    assert!(r.success, "{r:?}");

    let paper = [6.0, 0.3, 0.03];
    let mut t = Table::new(
        "E5: §3.1.2 worked example (2 MB host, ~17 KB/s dirty rate)",
        &["round", "copied KB", "took s", "paper s"],
    );
    let mut rounds = Vec::new();
    for (i, it) in r.iterations.iter().enumerate() {
        t.row(&[
            format!("{}", i + 1),
            (it.bytes / 1024).to_string(),
            format!("{:.3}", it.duration.as_secs_f64()),
            paper
                .get(i)
                .map(|p| format!("{p:.2}"))
                .unwrap_or_else(|| "-".into()),
        ]);
        rounds.push((it.bytes, it.duration.as_secs_f64()));
    }
    t.row(&[
        "final (frozen)".to_string(),
        (r.residual_bytes / 1024).to_string(),
        format!("{:.3}", r.freeze_time.as_secs_f64()),
        "~0.03".to_string(),
    ]);
    t.print();
    println!(
        "\nFreeze time {:.0} ms (+{:.0} ms kernel-state copy) instead of ~6 s.",
        r.freeze_time.as_secs_f64() * 1e3 - r.kernel_state_cost.as_secs_f64() * 1e3,
        r.kernel_state_cost.as_secs_f64() * 1e3
    );

    let tree = c.span_tree();
    let mut summary = SpanSummary::new();
    summary.absorb_tree(&tree);
    summary.table("Phase spans of the worked example").print();
    export_trace("exp_precopy_example", &tree);

    emit_full(
        "exp_precopy_example",
        &Results {
            rounds,
            residual_bytes: r.residual_bytes,
            freeze_secs: r.freeze_time.as_secs_f64(),
            paper_rounds_secs: paper,
        },
        &c.metrics_report(),
        vbench::Extras::spans(&summary),
    );
}
