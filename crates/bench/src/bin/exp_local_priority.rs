//! E10 — §2: "Because of priority scheduling for locally invoked
//! programs, a text-editing user need not notice the presence of
//! background jobs providing they are not contending for memory."
//!
//! Measures the editor's keystroke→echo response time on a workstation
//! with 0, 1, and 2 guest compute jobs.

use vbench::{emit, quiet_cluster, Table};
use vcore::ExecTarget;
use vkernel::Priority;
use vsim::SimDuration;
use vworkload::profiles;

struct Row {
    guest_jobs: usize,
    mean_response_ms: f64,
    p95_response_ms: f64,
    keystrokes: usize,
}
vsim::impl_to_json!(Row {
    guest_jobs,
    mean_response_ms,
    p95_response_ms,
    keystrokes
});

fn run_with_guests(guests: usize, seed: u64) -> (Row, vsim::MetricsReport) {
    let mut c = quiet_cluster(2, seed);
    for g in 0..guests {
        let sim = profiles::simulation_profile(SimDuration::from_secs(3600));
        // Force the guests onto ws1, where the editor lives; issue the
        // request from ws2 so ws1 hosts them as remote-origin guests.
        let _ = g;
        c.exec(2, sim, ExecTarget::Named("ws1".into()), Priority::GUEST);
        c.run_for(SimDuration::from_secs(5));
    }
    // More keystrokes than the measurement window can drain, so the
    // editor is still alive (and its samples inspectable) when we stop.
    c.exec(
        1,
        profiles::editor_profile(5_000),
        ExecTarget::Local,
        Priority::LOCAL,
    );
    c.run_for(SimDuration::from_secs(120));

    // Find the editor's behaviour (it may have finished; search reports).
    let lh = c
        .exec_reports
        .iter()
        .find(|r| r.image == "edit")
        .and_then(|r| r.lh)
        .expect("editor created");
    let samples = c
        .stations
        .iter()
        .find_map(|w| w.programs.get(&lh))
        .map(|p| p.behavior.response_times.clone())
        .expect("editor still running (5000 keystrokes outlast the window)");
    let row = Row {
        guest_jobs: guests,
        mean_response_ms: samples.mean() * 1e3,
        p95_response_ms: samples.percentile(95.0).unwrap_or(0.0) * 1e3,
        keystrokes: samples.count(),
    };
    (row, c.metrics_report())
}

fn main() {
    let mut t = Table::new(
        "E10: editor keystroke->echo response vs background guest jobs",
        &["guest jobs", "mean ms", "p95 ms", "keystrokes"],
    );
    let seed = vbench::config_u64("seed", 50);
    let mut rows = Vec::new();
    let mut metrics = vsim::MetricsReport::new();
    for guests in 0..=2 {
        let (r, m) = run_with_guests(guests, seed + guests as u64);
        metrics.absorb(m.prefixed(&format!("guests{guests}")));
        t.row(&[
            r.guest_jobs.to_string(),
            format!("{:.1}", r.mean_response_ms),
            format!("{:.1}", r.p95_response_ms),
            r.keystrokes.to_string(),
        ]);
        rows.push(r);
    }
    t.print();
    println!(
        "\nShape check (§2): response times barely move as guest jobs are\n\
         added — local programs outrank guests, so the editor's burst\n\
         waits at most one quantum."
    );
    let degradation = rows[2].mean_response_ms / rows[0].mean_response_ms;
    println!("Mean degradation with 2 guests: {degradation:.2}x");
    emit("exp_local_priority", &rows, &metrics);
}
