//! E2 — §4.1 remote-execution cost breakdown.
//!
//! The paper: selecting a host costs 23 ms (time to the first response to
//! the multicast candidate query); setting up and later destroying the
//! execution environment costs 40 ms; loading the program is 330 ms per
//! 100 KB, independent of where the program runs (diskless workstations).
//!
//! This binary measures all three on the simulated cluster and sweeps the
//! image size to show the 330 ms / 100 KB slope.

use vbench::{emit, ms, pct, quiet_cluster, Table};
use vcore::ExecTarget;
use vkernel::Priority;
use vmem::{SpaceLayout, WwsParams};
use vsim::{OnlineStats, SimDuration};
use vworkload::ProgramProfile;

struct Results {
    selection_ms_paper: f64,
    selection_ms_measured: f64,
    setup_destroy_ms_paper: f64,
    setup_destroy_ms_measured: f64,
    load_ms_per_100kb_paper: f64,
    load_ms_per_100kb_measured: f64,
    load_points: Vec<(u64, f64)>,
}
vsim::impl_to_json!(Results {
    selection_ms_paper,
    selection_ms_measured,
    setup_destroy_ms_paper,
    setup_destroy_ms_measured,
    load_ms_per_100kb_paper,
    load_ms_per_100kb_measured,
    load_points
});

fn image_profile(kb: u64, secs: u64) -> ProgramProfile {
    ProgramProfile::steady(
        format!("img{kb}k"),
        SpaceLayout {
            code_bytes: kb * 1024 * 3 / 4,
            init_data_bytes: kb * 1024 / 4,
            heap_bytes: 64 * 1024,
            stack_bytes: 16 * 1024,
        },
        WwsParams {
            hot_kb: 4.0,
            hot_write_kb_per_sec: 20.0,
            cold_kb_per_sec: 1.0,
        },
        SimDuration::from_secs(secs),
    )
}

fn main() {
    // --- Selection time: first response to "@ *" over many trials. ---
    let base = vbench::config_u64("seed", 100);
    let trials = vbench::config_u64("trials", 20);
    let mut selection = OnlineStats::new();
    let mut metrics = vsim::MetricsReport::new();
    for seed in 0..trials {
        let mut c = quiet_cluster(6, base + seed);
        c.exec(
            1,
            image_profile(100, 1),
            ExecTarget::AnyIdle,
            Priority::GUEST,
        );
        c.run_for(SimDuration::from_secs(20));
        let r = &c.exec_reports[0];
        assert!(r.success, "{r:?}");
        selection.add(r.selection_time.as_secs_f64() * 1e3);
        if seed + 1 == trials {
            metrics.absorb(c.metrics_report().prefixed("selection"));
        }
    }

    // --- Load cost slope: creation time vs image size. ---
    // creation = environment setup + image load; the slope over image
    // size isolates the load, the intercept is the setup part.
    let sizes_kb = [50u64, 100, 200, 400];
    let mut load_points = Vec::new();
    let mut creation_ms = Vec::new();
    for &kb in &sizes_kb {
        let mut c = quiet_cluster(3, 7 + kb);
        c.exec(
            1,
            image_profile(kb, 1),
            ExecTarget::Named("ws2".into()),
            Priority::GUEST,
        );
        c.run_for(SimDuration::from_secs(60));
        let r = &c.exec_reports[0];
        assert!(r.success, "{r:?}");
        let cms = r.creation_time.as_secs_f64() * 1e3;
        creation_ms.push(cms);
        load_points.push((kb, cms));
        metrics.absorb(c.metrics_report().prefixed(&format!("load{kb}kb")));
    }
    // Least-squares slope (ms per KB) and intercept (ms).
    let n = sizes_kb.len() as f64;
    let sx: f64 = sizes_kb.iter().map(|&x| x as f64).sum();
    let sy: f64 = creation_ms.iter().sum();
    let sxx: f64 = sizes_kb.iter().map(|&x| (x * x) as f64).sum();
    let sxy: f64 = sizes_kb
        .iter()
        .zip(&creation_ms)
        .map(|(&x, &y)| x as f64 * y)
        .sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    let load_per_100kb = slope * 100.0;

    // --- Setup + destroy: the creation intercept plus the teardown. ---
    // Destruction cost is measured as the time from a finished program's
    // Exit to its logical host disappearing; we take the modeled teardown
    // (the paper lumps setup+destroy as one 40 ms figure).
    let destroy_ms = vsim::calib::PM_DESTROY_ENVIRONMENT.as_secs_f64() * 1e3;
    let setup_destroy = intercept + destroy_ms;

    let mut t = Table::new(
        "E2: remote execution costs (paper §4.1 vs measured)",
        &["quantity", "paper", "measured", "err"],
    );
    t.row(&[
        "host selection (ms)".to_string(),
        "23.0".into(),
        format!("{:.1}", selection.mean()),
        pct(selection.mean(), 23.0),
    ]);
    t.row(&[
        "env setup + destroy (ms)".to_string(),
        "40.0".into(),
        format!("{setup_destroy:.1}"),
        pct(setup_destroy, 40.0),
    ]);
    t.row(&[
        "program load (ms / 100 KB)".to_string(),
        "330.0".into(),
        format!("{load_per_100kb:.1}"),
        pct(load_per_100kb, 330.0),
    ]);
    t.print();

    let mut t2 = Table::new(
        "E2a: creation time vs image size (load slope)",
        &["image KB", "creation ms"],
    );
    for (kb, cms) in &load_points {
        t2.row(&[kb.to_string(), format!("{cms:.1}")]);
    }
    t2.print();
    println!("\n(creation = env setup intercept {intercept:.1} ms + load slope {slope:.3} ms/KB)");

    emit(
        "exp_remote_exec",
        &Results {
            selection_ms_paper: 23.0,
            selection_ms_measured: selection.mean(),
            setup_destroy_ms_paper: 40.0,
            setup_destroy_ms_measured: setup_destroy,
            load_ms_per_100kb_paper: 330.0,
            load_ms_per_100kb_measured: load_per_100kb,
            load_points: load_points.iter().map(|&(kb, ms)| (kb, ms)).collect(),
        },
        &metrics,
    );
    let _ = ms(SimDuration::ZERO);
}
