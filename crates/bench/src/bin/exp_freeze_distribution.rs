//! E4b — freeze-time distribution.
//!
//! The paper quotes a 5–210 ms *range* of suspension times. This
//! experiment characterizes the distribution behind such a range: the
//! parser migrated at 40 random points in its execution, under mild
//! packet loss, reporting mean / p95 / max and a histogram.

use vbench::{emit, launch, Table};
use vcluster::{Cluster, ClusterConfig};
use vcore::ExecTarget;
use vkernel::Priority;
use vnet::LossModel;
use vsim::{Histogram, Samples, SimDuration, TraceLevel};
use vworkload::profiles;

struct Results {
    runs: usize,
    mean_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
    max_ms: f64,
    histogram: Vec<(String, u64)>,
}
vsim::impl_to_json!(Results {
    runs,
    mean_ms,
    p50_ms,
    p95_ms,
    max_ms,
    histogram
});

fn main() {
    let mut samples = Samples::new();
    let mut hist = Histogram::new(vec![
        SimDuration::from_millis(50),
        SimDuration::from_millis(100),
        SimDuration::from_millis(150),
        SimDuration::from_millis(200),
        SimDuration::from_millis(300),
    ]);
    let base = vbench::config_u64("seed", 9000);
    let runs = vbench::config_u64("runs", 40);
    let mut metrics = vsim::MetricsReport::new();
    for i in 0..runs {
        let cfg = ClusterConfig {
            workstations: 3,
            seed: base + i,
            loss: LossModel::Bernoulli(1e-3),
            trace: vbench::trace_level(TraceLevel::Warn),
            ..ClusterConfig::default()
        };
        let mut c = Cluster::new(cfg);
        let row = profiles::row("parser").expect("row");
        let profile = vworkload::ProgramProfile::steady(
            "parser",
            profiles::layout_for("parser"),
            row.fit(),
            SimDuration::from_secs(3600),
        );
        let (lh, _) = launch(
            &mut c,
            1,
            profile,
            ExecTarget::Named("ws2".into()),
            Priority::GUEST,
        );
        // Migrate at a run-dependent point (2..22 s into execution).
        c.run_for(SimDuration::from_millis(2_000 + (i * 500) % 20_000));
        c.migrateprog(2, lh, false);
        c.run_for(SimDuration::from_secs(120));
        let r = &c.migration_reports[0];
        assert!(r.success, "run {i}: {r:?}");
        samples.add_duration(r.freeze_time);
        hist.add(r.freeze_time);
        if i == runs - 1 {
            metrics = c.metrics_report();
        }
    }

    let ms = |v: f64| v * 1e3;
    let mut t = Table::new(
        "E4b: freeze-time distribution (parser, 40 migration points, 0.1% loss)",
        &["statistic", "ms"],
    );
    t.row(&["mean".to_string(), format!("{:.0}", ms(samples.mean()))]);
    t.row(&[
        "p50".to_string(),
        format!("{:.0}", ms(samples.median().expect("non-empty"))),
    ]);
    t.row(&[
        "p95".to_string(),
        format!("{:.0}", ms(samples.percentile(95.0).expect("non-empty"))),
    ]);
    t.row(&[
        "max".to_string(),
        format!("{:.0}", ms(samples.max().expect("non-empty"))),
    ]);
    t.print();

    let mut h = Table::new("freeze-time histogram", &["bucket", "runs"]);
    for (label, count) in hist.rows() {
        h.row(&[label, count.to_string()]);
    }
    h.print();
    println!(
        "\nEvery one of {runs} randomly-timed migrations froze the parser\n\
         for well under a second (the naive copy would freeze it ~2 s)."
    );

    emit(
        "exp_freeze_distribution",
        &Results {
            runs: runs as usize,
            mean_ms: ms(samples.mean()),
            p50_ms: ms(samples.median().expect("non-empty")),
            p95_ms: ms(samples.percentile(95.0).expect("non-empty")),
            max_ms: ms(samples.max().expect("non-empty")),
            histogram: hist.rows(),
        },
        &metrics,
    );
}
