//! E3 — §4.1 migration state-copy costs.
//!
//! The paper: copying a logical host's kernel-server and program-manager
//! state costs 14 ms plus 9 ms per process and address space; copying
//! 1 MB of address space between hosts takes 3 seconds.
//!
//! Measures both: the kernel-state install time as a function of object
//! count (processes + spaces), and the host-to-host bulk copy rate over a
//! size sweep.

use vbench::{emit, pct, Table};
use vkernel::testkit::{AppEvent, Rig};
use vkernel::{LogicalHostId, Priority};
use vmem::SpaceLayout;
use vnet::HostAddr;
use vsim::calib::PAGE_BYTES;
use vsim::SimTime;

struct Results {
    state_copy_points: Vec<(u64, f64)>, // (objects, modeled ms)
    copy_rate_points: Vec<(u64, f64)>,  // (bytes, measured secs)
    secs_per_mb_paper: f64,
    secs_per_mb_measured: f64,
}
vsim::impl_to_json!(Results {
    state_copy_points,
    copy_rate_points,
    secs_per_mb_paper,
    secs_per_mb_measured
});

fn main() {
    vbench::args(); // start the wall clock; this experiment has no knobs
                    // --- Kernel-state copy cost vs object count. ---
                    // The migration record's copy cost is charged by the target program
                    // manager; here we construct logical hosts of increasing complexity
                    // and report the record's cost (14 + 9 * objects ms).
    let mut t = Table::new(
        "E3a: kernel/PM state copy cost (14 ms + 9 ms per process & space)",
        &["processes", "spaces", "objects", "paper ms", "model ms"],
    );
    let mut state_points = Vec::new();
    for &(procs, spaces) in &[(1u32, 1u32), (2, 1), (4, 1), (4, 2), (8, 4)] {
        let mut rig: Rig<u32> = Rig::new(1);
        let l = rig.kernel_mut(0).create_logical_host(LogicalHostId(10));
        let mut team = None;
        for _ in 0..spaces {
            team = Some(l.create_space(SpaceLayout::tiny()));
        }
        for _ in 0..procs {
            l.create_process(team.expect("space created"), Priority::GUEST, false);
        }
        let record = rig.kernel(0).extract_migration_record(LogicalHostId(10));
        let objects = (procs + spaces) as u64;
        let paper_ms = 14.0 + 9.0 * objects as f64;
        let model_ms = record.copy_cost().as_secs_f64() * 1e3;
        t.row(&[
            procs.to_string(),
            spaces.to_string(),
            objects.to_string(),
            format!("{paper_ms:.0}"),
            format!("{model_ms:.0}"),
        ]);
        state_points.push((objects, model_ms));
    }
    t.print();

    // --- Bulk copy rate: measured end-to-end over the protocol. ---
    let mut t2 = Table::new(
        "E3b: host-to-host address-space copy (paper: 3 s per MB)",
        &["size KB", "measured s", "s/MB", "err vs 3.0"],
    );
    let mut rate_points = Vec::new();
    let mut last_rate = 0.0;
    let mut metrics = vsim::MetricsReport::new();
    for &kb in &[128u64, 256, 512, 1024, 2048] {
        let mut rig: Rig<u32> = Rig::new(2);
        let l = rig.kernel_mut(0).create_logical_host(LogicalHostId(1));
        let team = l.create_space(SpaceLayout::tiny());
        let src = l.create_process(team, Priority::GUEST, false);
        let layout = SpaceLayout {
            code_bytes: 0,
            init_data_bytes: 0,
            heap_bytes: kb * 1024,
            stack_bytes: 0,
        };
        let (tlh, tspace) = {
            let l = rig.kernel_mut(1).create_logical_host(LogicalHostId(50));
            let s = l.create_space(layout);
            (LogicalHostId(50), s)
        };
        rig.kernel_mut(0).learn_binding(tlh, HostAddr(1));
        let pages: Vec<u32> = (0..(kb * 1024 / PAGE_BYTES) as u32).collect();
        rig.drive(0, |k, now| k.copy_pages(now, src, tlh, tspace, pages).1);
        rig.run_until(SimTime::MAX);
        let done = rig
            .log
            .iter()
            .find_map(|(at, e)| match e {
                AppEvent::CopyDone { result: Ok(_), .. } => Some(*at),
                _ => None,
            })
            .expect("copy completed");
        let secs = done.as_secs_f64();
        let per_mb = secs * 1024.0 / kb as f64;
        last_rate = per_mb;
        t2.row(&[
            kb.to_string(),
            format!("{secs:.3}"),
            format!("{per_mb:.3}"),
            pct(per_mb, 3.0),
        ]);
        rate_points.push((kb * 1024, secs));
        let mut m = vsim::MetricsReport::new();
        m.push(rig.kernel(0).metrics().snapshot("src"));
        m.push(rig.kernel(1).metrics().snapshot("dst"));
        metrics.absorb(m.prefixed(&format!("{kb}kb")));
    }
    t2.print();

    emit(
        "exp_copy_costs",
        &Results {
            state_copy_points: state_points,
            copy_rate_points: rate_points,
            secs_per_mb_paper: 3.0,
            secs_per_mb_measured: last_rate,
        },
        &metrics,
    );
}
