//! E9 — §1/§4.3 usage observations.
//!
//! The paper: "we observe over one third of our workstations idle, even at
//! the busiest times of the day"; "most of our workstations are over 80%
//! idle even during the peak usage hours"; "almost all remote execution
//! requests are honored".
//!
//! Simulates a 25-machine cluster (the paper's size) with the peak-hours
//! owner model for several simulated hours, issuing `@ *` requests at
//! random moments, and reports idle fractions and the honor rate.

use vbench::{emit, Table};
use vcluster::{Cluster, ClusterConfig, Command};
use vcore::ExecTarget;
use vkernel::Priority;
use vnet::LossModel;
use vsim::{DetRng, SimDuration, SimTime, TraceLevel};
use vworkload::{profiles, UserModelParams};

struct Results {
    workstations: usize,
    sim_hours: f64,
    mean_idle_fraction: f64,
    min_idle_fraction: f64,
    exec_requests: u64,
    exec_honored: u64,
    honor_rate: f64,
}
vsim::impl_to_json!(Results {
    workstations,
    sim_hours,
    mean_idle_fraction,
    min_idle_fraction,
    exec_requests,
    exec_honored,
    honor_rate
});

fn main() {
    // Plus the file server = the paper's ~25.
    let workstations = vbench::config_usize("workstations", 24);
    let cfg = ClusterConfig {
        workstations,
        seed: vbench::config_u64("seed", 1985),
        loss: LossModel::Bernoulli(1e-4),
        users: Some(UserModelParams::peak_hours()),
        trace: vbench::trace_level(TraceLevel::Warn),
        ..ClusterConfig::default()
    };
    let mut c = Cluster::new(cfg);

    // Random compile jobs via @* throughout the run.
    let mut rng = DetRng::seed(vbench::config_u64("rng_seed", 4242));
    let hours = vbench::config_f64("hours", 3.0);
    let total = SimDuration::from_secs_f64(hours * 3600.0);
    let mut t = SimTime::ZERO;
    let mut issued = 0u64;
    loop {
        t += SimDuration::from_secs_f64(rng.exp_f64(120.0));
        if t >= SimTime::ZERO + total {
            break;
        }
        let names = ["make", "cc68", "parser", "tex"];
        let name = *rng.pick(&names);
        let row = profiles::row(name).expect("known");
        c.at(
            t,
            Command::Exec {
                ws: 1 + rng.index(workstations),
                profile: profiles::steady_profile(row),
                target: ExecTarget::AnyIdle,
                priority: Priority::GUEST,
            },
        );
        issued += 1;
    }
    c.run_until(SimTime::ZERO + total);

    let honored = c.exec_reports.iter().filter(|r| r.success).count() as u64;
    let mut idle_fracs: Vec<f64> = c
        .stations
        .iter()
        .skip(1)
        .filter_map(|w| w.user.as_ref())
        .map(|u| u.measured_idle_fraction())
        .collect();
    idle_fracs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let mean_idle = idle_fracs.iter().sum::<f64>() / idle_fracs.len() as f64;

    let mut table = Table::new(
        "E9: cluster usage over 3 simulated peak hours (25 machines)",
        &["quantity", "paper", "measured"],
    );
    table.row(&[
        "mean owner idle fraction".to_string(),
        "> 0.80".to_string(),
        format!("{mean_idle:.2}"),
    ]);
    table.row(&[
        "min owner idle fraction".to_string(),
        "> 1/3 of WS idle at any time".to_string(),
        format!("{:.2}", idle_fracs[0]),
    ]);
    table.row(&[
        "@* requests issued".to_string(),
        "-".to_string(),
        issued.to_string(),
    ]);
    table.row(&[
        "@* requests honored".to_string(),
        "almost all".to_string(),
        format!("{honored} ({:.1}%)", honored as f64 / issued as f64 * 100.0),
    ]);
    let elapsed = c.now().since(vsim::SimTime::ZERO);
    let guest_cpu: f64 = c
        .stations
        .iter()
        .skip(1)
        .map(|w| w.cpu_guest.as_secs_f64())
        .sum();
    table.row(&[
        "guest CPU harvested (machine-min)".to_string(),
        "-".to_string(),
        format!("{:.1}", guest_cpu / 60.0),
    ]);
    let mean_util: f64 = c
        .stations
        .iter()
        .skip(1)
        .map(|w| w.cpu_utilization(elapsed))
        .sum::<f64>()
        / workstations as f64;
    table.row(&[
        "mean workstation CPU utilization".to_string(),
        "mostly idle".to_string(),
        format!("{:.1}%", mean_util * 100.0),
    ]);
    table.print();

    emit(
        "exp_cluster_usage",
        &Results {
            workstations,
            sim_hours: hours,
            mean_idle_fraction: mean_idle,
            min_idle_fraction: idle_fracs[0],
            exec_requests: issued,
            exec_honored: honored,
            honor_rate: honored as f64 / issued as f64,
        },
        &c.metrics_report(),
    );
}
