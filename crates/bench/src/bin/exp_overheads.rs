//! E6 — §4.1 kernel-operation overheads.
//!
//! The paper: identifying the team/kernel servers by local group ids adds
//! ~100 µs to every kernel/team-server operation; 13 µs is added to
//! several kernel operations for the frozen-process test. Neither is on
//! the packet path, so we account them: run a representative workload,
//! count the operations that incur each overhead, and report the modeled
//! totals alongside the rates.

use vbench::{emit, launch, quiet_cluster, Table};
use vcore::ExecTarget;
use vkernel::Priority;
use vsim::SimDuration;
use vworkload::profiles;

struct Results {
    freeze_checks: u64,
    group_lookups: u64,
    overhead_ms_total: f64,
    sim_seconds: f64,
    overhead_fraction: f64,
}
vsim::impl_to_json!(Results {
    freeze_checks,
    group_lookups,
    overhead_ms_total,
    sim_seconds,
    overhead_fraction
});

fn main() {
    // A busy little cluster: remote compile + migration + file traffic.
    let mut c = quiet_cluster(3, vbench::config_u64("seed", 99));
    let row = profiles::row("parser").expect("row");
    let profile = profiles::realistic_profile(row);
    let (lh, _) = launch(
        &mut c,
        1,
        profile,
        ExecTarget::Named("ws2".into()),
        Priority::GUEST,
    );
    c.run_for(SimDuration::from_secs(5));
    c.migrateprog(2, lh, false);
    c.run_for(SimDuration::from_secs(40));

    let mut freeze_checks = 0;
    let mut group_lookups = 0;
    let mut ops = 0;
    for w in &c.stations {
        let s = w.kernel.stats();
        freeze_checks += s.freeze_checks;
        group_lookups += s.group_lookups;
        ops += s.sends + s.replies + s.deliveries;
    }
    let overhead = vsim::calib::FREEZE_CHECK_OVERHEAD * freeze_checks
        + vsim::calib::GROUP_ID_LOOKUP_OVERHEAD * group_lookups;
    let sim_secs = c.now().as_secs_f64();

    let mut t = Table::new(
        "E6: kernel-operation overheads (modeled per §4.1)",
        &["quantity", "value"],
    );
    t.row(&[
        "freeze checks (13 us each)".to_string(),
        freeze_checks.to_string(),
    ]);
    t.row(&[
        "local-group lookups (100 us each)".to_string(),
        group_lookups.to_string(),
    ]);
    t.row(&["IPC operations total".to_string(), ops.to_string()]);
    t.row(&[
        "total overhead (ms)".to_string(),
        format!("{:.2}", overhead.as_secs_f64() * 1e3),
    ]);
    t.row(&["simulated time (s)".to_string(), format!("{sim_secs:.1}")]);
    t.row(&[
        "overhead fraction of runtime".to_string(),
        format!("{:.6}%", overhead.as_secs_f64() / sim_secs * 100.0),
    ]);
    t.print();
    println!(
        "\nPaper's point (§4.1): \"The execution time overhead of remote\n\
         execution and migration facilities on the rest of the system is\n\
         small\" — 100 us per server operation and 13 us per freeze check\n\
         are negligible against millisecond-scale IPC."
    );

    emit(
        "exp_overheads",
        &Results {
            freeze_checks,
            group_lookups,
            overhead_ms_total: overhead.as_secs_f64() * 1e3,
            sim_seconds: sim_secs,
            overhead_fraction: overhead.as_secs_f64() / sim_secs,
        },
        &c.metrics_report(),
    );
}
