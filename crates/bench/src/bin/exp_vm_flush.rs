//! E8 — Figure 3-1 / §3.2: migration in a demand-paged system.
//!
//! Instead of copying address spaces host-to-host, flush modified pages to
//! the network file server and let the new host fault them in on demand.
//! "This approach ... takes two network transfers instead of just one for
//! pages that are dirty on the original host and then referenced on the
//! new host. However, we expect this technique to allow us to move
//! programs off of the original host faster."
//!
//! Compares direct pre-copy and VM-flush on the same workload: bytes moved
//! on the source path, total network bytes (including the later demand
//! fetch), and time to evacuate the source.

use vbench::{emit, launch, Table};
use vcluster::{Cluster, ClusterConfig, PAGING_LH};
use vcore::{ExecTarget, MigrationConfig, MigrationReport, StopPolicy, Strategy};
use vkernel::Priority;
use vnet::LossModel;
use vsim::{SimDuration, TraceLevel};
use vworkload::profiles;

struct Row {
    strategy: &'static str,
    source_path_kb: u64,
    total_network_kb: u64,
    double_copied_kb: u64,
    evacuation_secs: f64,
    freeze_ms: f64,
}
vsim::impl_to_json!(Row {
    strategy,
    source_path_kb,
    total_network_kb,
    double_copied_kb,
    evacuation_secs,
    freeze_ms
});

fn migrate(strategy: Strategy, seed: u64) -> (MigrationReport, u64, vsim::MetricsReport) {
    let cfg = ClusterConfig {
        workstations: 3,
        seed,
        loss: LossModel::None,
        trace: vbench::trace_level(TraceLevel::Warn),
        migration: MigrationConfig {
            strategy,
            ..MigrationConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut c = Cluster::new(cfg);
    let profile = profiles::simulation_profile(SimDuration::from_secs(3600));
    let (lh, _) = launch(
        &mut c,
        1,
        profile,
        ExecTarget::Named("ws2".into()),
        Priority::GUEST,
    );
    c.run_for(SimDuration::from_secs(20));
    c.migrateprog(2, lh, false);
    c.run_for(SimDuration::from_secs(60));
    let r = c.migration_reports[0].clone();
    assert!(r.success, "{r:?}");
    // Let any background demand-fetch finish, then read what the target
    // actually pulled back over the wire.
    c.run_for(SimDuration::from_secs(60));
    let fetched = c
        .stations
        .iter()
        .map(|w| w.pm.stats().fetched_bytes)
        .sum::<u64>();
    let m = c.metrics_report();
    (r, fetched, m)
}

fn main() {
    let seed = vbench::config_u64("seed", 11);
    let (pre, pre_fetched, pre_metrics) = migrate(Strategy::PreCopy(StopPolicy::default()), seed);
    let (vm, vm_fetched, vm_metrics) = migrate(
        Strategy::VmFlush {
            paging_lh: PAGING_LH,
            paging_space: vmem::SpaceId(0),
            stop: StopPolicy::default(),
        },
        seed,
    );
    let fetched_of = |s: &str| {
        if s == "vm-flush" {
            vm_fetched
        } else {
            pre_fetched
        }
    };

    let mut t = Table::new(
        "E8: direct pre-copy vs VM-flush (§3.2) — ~1 MB simulation job",
        &[
            "strategy",
            "source-path KB",
            "network total KB",
            "fetched-back KB",
            "evacuation s",
            "freeze ms",
        ],
    );
    let mut rows = Vec::new();
    for r in [&pre, &vm] {
        let source_kb = (r.precopied_bytes() + r.residual_bytes) / 1024;
        let evac = r.total_time.as_secs_f64();
        t.row(&[
            r.strategy.to_string(),
            source_kb.to_string(),
            (r.network_bytes / 1024).to_string(),
            (fetched_of(r.strategy) / 1024).to_string(),
            format!("{evac:.2}"),
            format!("{:.0}", r.freeze_time.as_secs_f64() * 1e3),
        ]);
        rows.push(Row {
            strategy: r.strategy,
            source_path_kb: source_kb,
            total_network_kb: r.network_bytes / 1024,
            double_copied_kb: fetched_of(r.strategy) / 1024,
            evacuation_secs: evac,
            freeze_ms: r.freeze_time.as_secs_f64() * 1e3,
        });
    }
    t.print();
    println!(
        "\nShape check (§3.2): VM-flush moves far less on the source path\n\
         (only written pages; code and initialized data reload from the\n\
         image), so it evacuates the source faster — at the price of\n\
         moving every flushed page across the network twice. The\n\
         double-copied column is *measured* CopyFrom traffic: the target\n\
         demand-fetched exactly the flushed pages from the paging store."
    );
    assert!(
        rows[1].source_path_kb < rows[0].source_path_kb,
        "vm-flush must ship less from the source"
    );
    assert!(rows[1].double_copied_kb > 0);
    assert_eq!(rows[0].double_copied_kb, 0, "pre-copy fetches nothing");
    assert_eq!(
        vm_fetched, vm.double_copied_bytes,
        "measured fetch equals the planned unique flush set"
    );
    let _ = (pre_fetched, &pre);
    let mut metrics = pre_metrics.prefixed("precopy");
    metrics.absorb(vm_metrics.prefixed("vmflush"));
    emit("exp_vm_flush", &rows, &metrics);
}
