//! E1 — Table 4-1: dirty-page generation rates.
//!
//! For each of the paper's eight programs, runs the fitted workload on a
//! workstation and measures the unique KB dirtied in windows of 0.2 s, 1 s
//! and 3 s by clearing and re-reading the MMU dirty bits — the same
//! measurement the paper made. Prints paper-vs-measured per cell.

use vbench::{emit, f1, launch, measure_dirty_windows, pct, quiet_cluster, Table};
use vcore::ExecTarget;
use vkernel::Priority;
use vsim::{Json, SimDuration, ToJson};
use vworkload::profiles::{self, TABLE_4_1};
use vworkload::ProgramProfile;

fn main() {
    let seed = vbench::config_u64("seed", 1985);
    let windows = [0.2f64, 1.0, 3.0];
    // Enough windows that sub-page programs (make) average sensibly.
    let reps = [60usize, 30, 15];

    let mut table = Table::new(
        "Table 4-1: dirty page generation (KB) — paper vs measured",
        &[
            "program",
            "0.2s paper",
            "0.2s meas",
            "err",
            "1s paper",
            "1s meas",
            "err",
            "3s paper",
            "3s meas",
            "err",
        ],
    );
    let mut rows = Vec::new();
    let mut metrics = vsim::MetricsReport::new();

    for (pi, r) in TABLE_4_1.iter().enumerate() {
        let paper = [r.at_0_2s, r.at_1s, r.at_3s];
        let mut measured = [0.0f64; 3];
        for (wi, (&w, &n)) in windows.iter().zip(reps.iter()).enumerate() {
            // A fresh deterministic cluster per cell keeps cells
            // independent; the program computes throughout.
            let mut c = quiet_cluster(1, seed + pi as u64 * 17 + wi as u64);
            let profile = ProgramProfile::steady(
                r.name,
                profiles::layout_for(r.name),
                r.fit(),
                SimDuration::from_secs(3600),
            );
            let (lh, team) = launch(&mut c, 1, profile, ExecTarget::Local, Priority::LOCAL);
            c.run_for(SimDuration::from_secs(2)); // Reach hot-set steady state.
            let s = measure_dirty_windows(&mut c, lh, team, SimDuration::from_secs_f64(w), n);
            measured[wi] = s.mean();
            metrics = c.metrics_report();
        }
        table.row(&[
            r.name.to_string(),
            f1(paper[0]),
            f1(measured[0]),
            pct(measured[0], paper[0]),
            f1(paper[1]),
            f1(measured[1]),
            pct(measured[1], paper[1]),
            f1(paper[2]),
            f1(measured[2]),
            pct(measured[2], paper[2]),
        ]);
        // Flat row — one column pair per window — so the doc generator
        // renders the artifact table directly.
        rows.push(Json::obj(vec![
            ("program", r.name.to_json()),
            ("paper 0.2s", paper[0].to_json()),
            ("meas 0.2s", measured[0].to_json()),
            ("paper 1s", paper[1].to_json()),
            ("meas 1s", measured[1].to_json()),
            ("paper 3s", paper[2].to_json()),
            ("meas 3s", measured[2].to_json()),
        ]));
    }
    table.print();
    println!(
        "\nNote: the 'linking loader' row is non-monotone in the paper\n\
         (39.2 KB @1s vs 37.8 KB @3s — measurement noise); the fitted\n\
         model is necessarily monotone and smooths it."
    );
    emit("table_4_1", &rows, &metrics);
}
