//! E1 — Table 4-1: dirty-page generation rates.
//!
//! For each of the paper's eight programs, runs the fitted workload on a
//! workstation and measures the unique KB dirtied in windows of 0.2 s, 1 s
//! and 3 s by clearing and re-reading the MMU dirty bits — the same
//! measurement the paper made. Prints paper-vs-measured per cell.

use vbench::{emit, f1, launch, measure_dirty_windows, pct, quiet_cluster, Table};
use vcore::ExecTarget;
use vkernel::Priority;
use vsim::SimDuration;
use vworkload::profiles::{self, TABLE_4_1};
use vworkload::ProgramProfile;

struct Cell {
    window_secs: f64,
    paper_kb: f64,
    measured_kb: f64,
}
vsim::impl_to_json!(Cell {
    window_secs,
    paper_kb,
    measured_kb
});

struct Row {
    program: String,
    cells: Vec<Cell>,
}
vsim::impl_to_json!(Row { program, cells });

fn main() {
    let windows = [0.2f64, 1.0, 3.0];
    // Enough windows that sub-page programs (make) average sensibly.
    let reps = [60usize, 30, 15];

    let mut table = Table::new(
        "Table 4-1: dirty page generation (KB) — paper vs measured",
        &[
            "program",
            "0.2s paper",
            "0.2s meas",
            "err",
            "1s paper",
            "1s meas",
            "err",
            "3s paper",
            "3s meas",
            "err",
        ],
    );
    let mut rows = Vec::new();
    let mut metrics = vsim::MetricsReport::new();

    for (pi, r) in TABLE_4_1.iter().enumerate() {
        let paper = [r.at_0_2s, r.at_1s, r.at_3s];
        let mut measured = [0.0f64; 3];
        for (wi, (&w, &n)) in windows.iter().zip(reps.iter()).enumerate() {
            // A fresh deterministic cluster per cell keeps cells
            // independent; the program computes throughout.
            let mut c = quiet_cluster(1, 1985 + pi as u64 * 17 + wi as u64);
            let profile = ProgramProfile::steady(
                r.name,
                profiles::layout_for(r.name),
                r.fit(),
                SimDuration::from_secs(3600),
            );
            let (lh, team) = launch(&mut c, 1, profile, ExecTarget::Local, Priority::LOCAL);
            c.run_for(SimDuration::from_secs(2)); // Reach hot-set steady state.
            let s = measure_dirty_windows(&mut c, lh, team, SimDuration::from_secs_f64(w), n);
            measured[wi] = s.mean();
            metrics = c.metrics_report();
        }
        table.row(&[
            r.name.to_string(),
            f1(paper[0]),
            f1(measured[0]),
            pct(measured[0], paper[0]),
            f1(paper[1]),
            f1(measured[1]),
            pct(measured[1], paper[1]),
            f1(paper[2]),
            f1(measured[2]),
            pct(measured[2], paper[2]),
        ]);
        rows.push(Row {
            program: r.name.to_string(),
            cells: windows
                .iter()
                .zip(paper.iter().zip(measured.iter()))
                .map(|(&w, (&p, &m))| Cell {
                    window_secs: w,
                    paper_kb: p,
                    measured_kb: m,
                })
                .collect(),
        });
    }
    table.print();
    println!(
        "\nNote: the 'linking loader' row is non-monotone in the paper\n\
         (39.2 KB @1s vs 37.8 KB @3s — measurement noise); the fitted\n\
         model is necessarily monotone and smooths it."
    );
    emit("table_4_1", &rows, &metrics);
}
