//! E11 — §4.2 space cost of the migration facility.
//!
//! The paper: migration added 8 KB of code+data to the kernel and 4 KB to
//! the program manager; remote execution itself added nothing (the kernel
//! is network-transparent anyway). We report the analogous static
//! accounting for this reproduction: source lines of the migration-only
//! modules versus the rest.

use vbench::{emit, Table};

struct Results {
    migration_loc: usize,
    kernel_loc: usize,
    services_loc: usize,
    migration_fraction: f64,
}
vsim::impl_to_json!(Results {
    migration_loc,
    kernel_loc,
    services_loc,
    migration_fraction
});

fn count_loc(path: &str) -> usize {
    std::fs::read_to_string(path)
        .map(|s| {
            s.lines()
                .filter(|l| {
                    let t = l.trim();
                    !t.is_empty() && !t.starts_with("//")
                })
                .count()
        })
        .unwrap_or(0)
}

fn main() {
    vbench::args(); // start the wall clock; this experiment has no knobs
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| format!("{d}/../.."))
        .unwrap_or_else(|_| ".".into());

    // Migration-specific code: the engine, plus the kernel's
    // freeze/record/transfer support (counted as whole modules where the
    // module exists only for migration).
    let migration_files = [
        "crates/core/src/migration.rs",
        "crates/kernel/src/transfer.rs",
    ];
    let kernel_files = [
        "crates/kernel/src/kernel.rs",
        "crates/kernel/src/logical_host.rs",
        "crates/kernel/src/binding.rs",
        "crates/kernel/src/packet.rs",
        "crates/kernel/src/process.rs",
        "crates/kernel/src/ids.rs",
    ];
    let service_files = [
        "crates/services/src/program_manager.rs",
        "crates/services/src/file_server.rs",
        "crates/services/src/display.rs",
        "crates/services/src/msg.rs",
    ];

    let mig: usize = migration_files
        .iter()
        .map(|f| count_loc(&format!("{root}/{f}")))
        .sum();
    let kern: usize = kernel_files
        .iter()
        .map(|f| count_loc(&format!("{root}/{f}")))
        .sum();
    let svc: usize = service_files
        .iter()
        .map(|f| count_loc(&format!("{root}/{f}")))
        .sum();

    let mut t = Table::new(
        "E11: space cost of migration (paper: +8 KB kernel, +4 KB PM)",
        &["component", "LoC"],
    );
    t.row(&["migration-only modules".to_string(), mig.to_string()]);
    t.row(&[
        "kernel (IPC, binding, freeze)".to_string(),
        kern.to_string(),
    ]);
    t.row(&["services (PM, FS, display)".to_string(), svc.to_string()]);
    t.row(&[
        "migration fraction".to_string(),
        format!("{:.1}%", mig as f64 / (mig + kern + svc) as f64 * 100.0),
    ]);
    t.print();
    println!(
        "\nThe paper's 8 KB + 4 KB against a kernel of tens of KB is the\n\
         same shape: migration is a modest add-on to a kernel whose IPC\n\
         was network-transparent from the start."
    );
    // Static analysis only — no simulation runs, so the report is empty.
    emit(
        "exp_space_cost",
        &Results {
            migration_loc: mig,
            kernel_loc: kern,
            services_loc: svc,
            migration_fraction: mig as f64 / (mig + kern + svc) as f64,
        },
        &vsim::MetricsReport::new(),
    );
}
