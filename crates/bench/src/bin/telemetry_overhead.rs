//! P2 — what observability costs: trace emission (null vs ring sink) and
//! 1 ms-interval time-series sampling, against a bare 1 000-host event
//! churn.
//!
//! Four cells share the exact same deterministic churn loop (the
//! `sim_throughput` workload shape on the timing wheel):
//!
//! * `base` — no trace calls, no sampling: the reference rate.
//! * `trace_null` — one detail-level trace record offered per dispatch
//!   into [`TraceSinkSpec::Off`]: proves the null sink is ~free.
//! * `trace_ring` — the same records into a fixed ring: tracing "on".
//! * `sampling_1ms` — `base` plus a [`SeriesStore`] sweeping the engine's
//!   queue-depth and tombstone gauges every simulated millisecond.
//!
//! Each cell runs `reps` times in one process and keeps its best wall
//! rate, so the overhead ratios in the `run` section compare like with
//! like and cancel machine speed. `bench_regress` gates
//! `run.sampling_overhead_ratio` at ≤ 10% — the promise that telemetry
//! never becomes the bottleneck it is meant to find. The sampled series
//! of every rep must serialize byte-identically (asserted here): the
//! time-series determinism claim at bench scale.

use std::collections::BTreeMap;
use std::time::Instant;

use vbench::{emit_full, Extras, Table};
use vsim::{
    DetRng, Probe, SamplingSpec, SeriesReport, SeriesStore, SimContext, SimDuration, SimTime,
    Subsystem, ToJson, TraceEvent, TraceLevel, TraceSinkSpec,
};

/// Per-host timer period: 100 events per simulated second per host.
const TICK_US: u64 = 10_000;
/// Simulated events each cell targets (before sampling ticks).
const EVENTS_PER_CELL: u64 = 2_000_000;
/// Hosts in the churn (the acceptance criterion's 1k-host point).
const HOSTS: usize = 1_000;

/// One-shot event marker (messages, timeouts): deliver and die.
const ONE_SHOT: u64 = 1 << 63;
/// The telemetry sweep event in the sampling cell.
const SAMPLE: u64 = u64::MAX;

struct Row {
    cell: String,
    hosts: usize,
    events: u64,
    sim_secs: f64,
    sweeps: u64,
}
vsim::impl_to_json!(Row {
    cell,
    hosts,
    events,
    sim_secs,
    sweeps
});

enum Variant {
    Base,
    Trace(TraceSinkSpec),
    Sampling,
}

struct CellOut {
    events: u64,
    wall_secs: f64,
    sweeps: u64,
    series: Option<SeriesReport>,
    scope: vsim::ScopeMetrics,
}

fn run_cell(name: &str, variant: &Variant, sim_us: u64, seed: u64) -> CellOut {
    let (level, sink) = match variant {
        Variant::Trace(sink) => (TraceLevel::Detail, *sink),
        _ => (TraceLevel::Warn, TraceSinkSpec::Off),
    };
    let mut ctx: SimContext<u64> =
        SimContext::with_sink(vsim::QueueBackend::TimingWheel, level, sink);
    let trace_each = matches!(variant, Variant::Trace(_));
    let mut store = match variant {
        Variant::Sampling => {
            let depth = ctx.metrics_mut().gauge(Subsystem::Engine, "queue_depth");
            let tombs = ctx.metrics_mut().gauge(Subsystem::Engine, "tombstones");
            let mut s = SeriesStore::new(SamplingSpec {
                every: SimDuration::from_millis(1),
                capacity: 1024,
            });
            s.enroll(
                Subsystem::Engine,
                "queue_depth",
                "events",
                Probe::Gauge(depth),
            );
            s.enroll(
                Subsystem::Engine,
                "tombstones",
                "events",
                Probe::Gauge(tombs),
            );
            ctx.schedule_after(SimDuration::from_millis(1), SAMPLE);
            Some(s)
        }
        _ => None,
    };
    let mut rng = DetRng::seed(seed);
    let mut cancellable = Vec::new();
    for h in 0..HOSTS as u64 {
        ctx.schedule_at(SimTime::from_micros(rng.range_u64(0, TICK_US)), h);
    }
    let limit = SimTime::from_micros(sim_us);
    let wall = Instant::now();
    while let Some((now, ev)) = ctx.step_due(limit) {
        if ev == SAMPLE {
            if let Some(s) = &mut store {
                s.sample(now, ctx.metrics());
            }
            if ctx.pending() > 0 {
                ctx.schedule_after(SimDuration::from_millis(1), SAMPLE);
            }
            continue;
        }
        if trace_each {
            ctx.detail(Subsystem::Engine, TraceEvent::Note { text: "dispatch" });
        }
        if ev & ONE_SHOT != 0 {
            continue;
        }
        let host = ev;
        let next = TICK_US + rng.range_u64(0, TICK_US / 5) - TICK_US / 10;
        ctx.schedule_after(SimDuration::from_micros(next), host);
        match rng.index(100) {
            0..=9 => {
                ctx.schedule_after(
                    SimDuration::from_micros(rng.range_u64(1, 5_000)),
                    host | ONE_SHOT,
                );
            }
            10..=14 => {
                let id = ctx.schedule_after(SimDuration::from_micros(50_000), host | ONE_SHOT);
                cancellable.push(id);
            }
            15 => {
                ctx.schedule_after(SimDuration::from_secs(24 * 3600), host | ONE_SHOT);
            }
            _ => {}
        }
        if cancellable.len() >= 32 {
            for id in cancellable.drain(..) {
                ctx.cancel(id);
            }
        }
    }
    CellOut {
        events: ctx.events_delivered(),
        wall_secs: wall.elapsed().as_secs_f64(),
        sweeps: store.as_ref().map_or(0, SeriesStore::sweeps),
        series: store.map(|s| s.report()),
        scope: ctx.metrics().snapshot(name),
    }
}

fn main() {
    vbench::args();
    let seed = vbench::config_u64("seed", 1985);
    let budget = vbench::config_u64("events_per_cell", EVENTS_PER_CELL);
    let reps = vbench::config_usize("reps", 3).max(1);
    let sim_us = budget * TICK_US / HOSTS as u64;

    let cells: [(&str, Variant); 4] = [
        ("base", Variant::Base),
        ("trace_null", Variant::Trace(TraceSinkSpec::Off)),
        ("trace_ring", Variant::Trace(TraceSinkSpec::Ring(4096))),
        ("sampling_1ms", Variant::Sampling),
    ];

    let mut rows = Vec::new();
    let mut metrics = vsim::MetricsReport::new();
    let mut best_rate: BTreeMap<String, f64> = BTreeMap::new();
    let mut sample_series: Option<SeriesReport> = None;
    let mut t = Table::new(
        "P2: telemetry overhead — deterministic per-cell event totals",
        &["cell", "hosts", "events", "sim s", "sweeps"],
    );
    println!("cell            events    best wall s   best ev/wall-s  (of {reps} reps)");
    for (name, variant) in &cells {
        let mut best: Option<CellOut> = None;
        let mut first_series: Option<String> = None;
        for _ in 0..reps {
            let out = run_cell(name, variant, sim_us, seed);
            // Same seed, same cell: the sampled series must serialize
            // byte-identically across reps — wall clock may vary, the
            // telemetry must not.
            if let Some(series) = &out.series {
                let json = series.to_json().pretty();
                match &first_series {
                    None => first_series = Some(json),
                    Some(prev) => assert_eq!(
                        prev, &json,
                        "{name}: same-seed reps produced different series"
                    ),
                }
            }
            if best.as_ref().is_none_or(|b| out.wall_secs < b.wall_secs) {
                best = Some(out);
            }
        }
        let out = best.expect("reps >= 1");
        let rate = out.events as f64 / out.wall_secs;
        best_rate.insert((*name).to_string(), rate);
        println!(
            "{name:<14} {events:>9}  {wall:>11.3}  {rate:>14.0}",
            events = out.events,
            wall = out.wall_secs,
        );
        let sim_secs = sim_us as f64 / 1e6;
        t.row(&[
            (*name).to_string(),
            HOSTS.to_string(),
            out.events.to_string(),
            format!("{sim_secs:.1}"),
            out.sweeps.to_string(),
        ]);
        rows.push(Row {
            cell: (*name).to_string(),
            hosts: HOSTS,
            events: out.events,
            sim_secs,
            sweeps: out.sweeps,
        });
        metrics.push(out.scope);
        if let Some(series) = out.series {
            sample_series = Some(series);
        }
    }
    t.print();

    let base = best_rate["base"];
    let ratio = |cell: &str| (base - best_rate[cell]) / base;
    let sampling = ratio("sampling_1ms");
    let trace_null = ratio("trace_null");
    let trace_ring = ratio("trace_ring");
    println!(
        "\nOverheads vs base: trace_null {:+.1}%  trace_ring {:+.1}%  sampling_1ms {:+.1}%",
        trace_null * 100.0,
        trace_ring * 100.0,
        sampling * 100.0
    );

    let extras = Extras {
        series: sample_series.as_ref(),
        run_extra: vec![
            ("sampling_overhead_ratio", sampling.to_json()),
            ("trace_null_overhead_ratio", trace_null.to_json()),
            ("trace_ring_overhead_ratio", trace_ring.to_json()),
        ],
        ..Extras::default()
    };
    emit_full("telemetry_overhead", &rows, &metrics, extras);
}
