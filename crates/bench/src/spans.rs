//! Span-based profiling support for the bench binaries.
//!
//! The cluster components emit causal spans (see [`vsim::span`]) into
//! their traces; this module turns a merged [`SpanTree`] into the two
//! artifacts the experiments publish:
//!
//! * a Chrome/Perfetto `trace.json` file (one process per station, one
//!   track per emitting component) loadable at <https://ui.perfetto.dev>,
//! * a [`SpanSummary`] of per-name duration percentiles folded into the
//!   experiment's JSON artifact by [`crate::emit_full`].
//!
//! It also hosts the shared `--trace-level` / `VSIM_TRACE_LEVEL` knob and
//! the migration phase-breakdown query behind `exp_freeze_time`.

use std::collections::BTreeMap;
use std::path::PathBuf;

use vsim::{Json, Samples, SimDuration, SpanId, SpanTree, ToJson, TraceLevel};

/// Resolves the trace verbosity for a bench binary: `--trace-level
/// <detail|info|warn>` (or `--trace-level=...`) on the command line wins,
/// then the `VSIM_TRACE_LEVEL` environment variable, then `default`.
///
/// Unknown values fall back to `default` with a warning on stderr so a
/// typo degrades to a normal run instead of aborting a long sweep.
pub fn trace_level(default: TraceLevel) -> TraceLevel {
    let mut choice = std::env::var("VSIM_TRACE_LEVEL").ok();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if let Some(v) = a.strip_prefix("--trace-level=") {
            choice = Some(v.to_string());
        } else if a == "--trace-level" {
            choice = args.next();
        }
    }
    parse_trace_level(choice.as_deref(), default)
}

/// The parsing behind [`trace_level`], separated for testing.
pub fn parse_trace_level(choice: Option<&str>, default: TraceLevel) -> TraceLevel {
    match choice.map(str::to_ascii_lowercase).as_deref() {
        Some("detail") => TraceLevel::Detail,
        Some("info") => TraceLevel::Info,
        Some("warn") => TraceLevel::Warn,
        Some(other) => {
            eprintln!("vbench: unknown trace level {other:?} (expected detail|info|warn)");
            default
        }
        None => default,
    }
}

/// The component that allocated a span, recovered from the actor field of
/// its id (see the `SpanIdGen` actor conventions: 1 = cluster scheduler,
/// `0x100 + host` = kernel, `0x200 + host` = migrator).
fn actor_name(id: SpanId) -> &'static str {
    match id.raw() >> 40 {
        1 => "scheduler",
        a if a >= 0x200 => "migrator",
        _ => "kernel",
    }
}

/// Renders a span tree as a Chrome Trace Event JSON document ("X"
/// complete events, timestamps in simulated microseconds). Each station
/// is a process (`pid` = physical-host address) and each emitting
/// component a named thread, so Perfetto shows one lane per
/// kernel/migrator/scheduler per station. Unclosed spans are skipped:
/// they have no extent to draw.
pub fn perfetto_json(tree: &SpanTree) -> Json {
    let mut events = Vec::new();
    let mut tracks: BTreeMap<(u16, u64), &'static str> = BTreeMap::new();
    for n in tree.nodes() {
        let Some(close) = n.close else { continue };
        let actor = n.id.raw() >> 40;
        tracks.insert((n.host, actor), actor_name(n.id));
        let mut args = vec![("span", format!("{}", n.id).to_json())];
        if let Some(p) = n.parent.span_id() {
            args.push(("parent", format!("{p}").to_json()));
        }
        events.push(Json::obj([
            ("name", n.name.to_json()),
            ("ph", "X".to_json()),
            ("ts", n.open.as_micros().to_json()),
            ("dur", close.saturating_since(n.open).as_micros().to_json()),
            ("pid", u64::from(n.host).to_json()),
            ("tid", actor.to_json()),
            ("args", Json::obj(args)),
        ]));
    }
    let mut named_pids = std::collections::BTreeSet::new();
    for (&(host, actor), &name) in &tracks {
        if named_pids.insert(host) {
            events.push(Json::obj([
                ("name", "process_name".to_json()),
                ("ph", "M".to_json()),
                ("pid", u64::from(host).to_json()),
                (
                    "args",
                    Json::obj([("name", format!("station {host}").to_json())]),
                ),
            ]));
        }
        events.push(Json::obj([
            ("name", "thread_name".to_json()),
            ("ph", "M".to_json()),
            ("pid", u64::from(host).to_json()),
            ("tid", actor.to_json()),
            ("args", Json::obj([("name", name.to_json())])),
        ]));
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", "ms".to_json()),
    ])
}

/// Writes the Perfetto rendering of `tree` to
/// `<artifact_dir>/<name>_trace.json` and returns the path (or `None` on
/// an I/O error, reported on stderr).
pub fn export_trace(name: &str, tree: &SpanTree) -> Option<PathBuf> {
    let path = crate::artifact_dir().join(format!("{name}_trace.json"));
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&path, perfetto_json(tree).pretty()) {
        Ok(()) => {
            println!(
                "[trace: {} — load at https://ui.perfetto.dev]",
                path.display()
            );
            Some(path)
        }
        Err(e) => {
            eprintln!("vbench: could not write {}: {e}", path.display());
            None
        }
    }
}

/// Per-span-name duration statistics accumulated over one or more runs,
/// reported as count plus p50/p95/p99 milliseconds.
#[derive(Default)]
pub struct SpanSummary {
    by_name: BTreeMap<&'static str, Samples>,
}

impl SpanSummary {
    /// An empty summary.
    pub fn new() -> Self {
        SpanSummary::default()
    }

    /// Folds every closed span of `tree` into the summary.
    pub fn absorb_tree(&mut self, tree: &SpanTree) {
        for n in tree.nodes() {
            if let Some(d) = n.duration() {
                self.by_name.entry(n.name).or_default().add_duration(d);
            }
        }
    }

    /// True when no closed span has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// Rows of `(name, count, p50 ms, p95 ms, p99 ms)`.
    pub fn rows(&self) -> Vec<(&'static str, usize, f64, f64, f64)> {
        let ms = |s: f64| s * 1e3;
        self.by_name
            .iter()
            .map(|(name, s)| {
                (
                    *name,
                    s.count(),
                    ms(s.percentile(50.0).unwrap_or(0.0)),
                    ms(s.percentile(95.0).unwrap_or(0.0)),
                    ms(s.percentile(99.0).unwrap_or(0.0)),
                )
            })
            .collect()
    }

    /// Serializes as an array of `{span, count, p50_ms, p95_ms, p99_ms}`.
    pub fn to_json(&self) -> Json {
        Json::arr(self.rows().into_iter().map(|(name, count, p50, p95, p99)| {
            Json::obj([
                ("span", name.to_json()),
                ("count", (count as u64).to_json()),
                ("p50_ms", p50.to_json()),
                ("p95_ms", p95.to_json()),
                ("p99_ms", p99.to_json()),
            ])
        }))
    }

    /// Renders the summary as a printable table.
    pub fn table(&self, title: &str) -> crate::Table {
        let mut t = crate::Table::new(title, &["span", "count", "p50 ms", "p95 ms", "p99 ms"]);
        for (name, count, p50, p95, p99) in self.rows() {
            t.row(&[
                name.to_string(),
                count.to_string(),
                format!("{p50:.1}"),
                format!("{p95:.1}"),
                format!("{p99:.1}"),
            ]);
        }
        t
    }
}

/// The phase breakdown of one migration, read off its span tree.
///
/// The migrator opens each top-level phase the instant the previous one
/// closes, so `selection + initialization + precopy + freeze` tiles the
/// root `migration` span exactly; likewise `residual_copy + commit +
/// rebind` tiles `freeze`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MigrationPhases {
    /// Physical host the migrator ran on.
    pub host: u16,
    /// Host-selection phase (multicast query to decision).
    pub selection: SimDuration,
    /// Remote environment initialization.
    pub initialization: SimDuration,
    /// All unfrozen pre-copy rounds combined.
    pub precopy: SimDuration,
    /// Number of pre-copy round spans.
    pub precopy_rounds: usize,
    /// The frozen window (residual copy + commit + rebind).
    pub freeze: SimDuration,
    /// Residual dirty-page copy while frozen.
    pub residual_copy: SimDuration,
    /// Kernel-state transfer and installation.
    pub commit: SimDuration,
    /// Binding-cache rebind and unfreeze on the target.
    pub rebind: SimDuration,
    /// Duration of the root `migration` span.
    pub total: SimDuration,
}

impl MigrationPhases {
    /// Sum of the top-level phases; equals [`MigrationPhases::total`]
    /// when the phase spans tile the root (the invariant the migrator
    /// maintains).
    pub fn phase_sum(&self) -> SimDuration {
        self.selection + self.initialization + self.precopy + self.freeze
    }
}

/// Extracts one [`MigrationPhases`] per closed root `migration` span in
/// `tree`, in span-id order (i.e. start order per migrator).
pub fn migration_phases(tree: &SpanTree) -> Vec<MigrationPhases> {
    let mut out = Vec::new();
    for root in tree.spans_named("migration") {
        let Some(total) = tree.duration_of(root.id) else {
            continue;
        };
        let mut p = MigrationPhases {
            host: root.host,
            total,
            ..MigrationPhases::default()
        };
        for (name, d) in tree.breakdown(root.id) {
            match name {
                "selection" => p.selection = d,
                "initialization" => p.initialization = d,
                "precopy_round" => p.precopy = d,
                "freeze" => p.freeze = d,
                _ => {}
            }
        }
        p.precopy_rounds = tree
            .children(root.id)
            .filter(|c| c.name == "precopy_round")
            .count();
        for freeze in tree.children(root.id).filter(|c| c.name == "freeze") {
            for (name, d) in tree.breakdown(freeze.id) {
                match name {
                    "residual_copy" => p.residual_copy += d,
                    "commit" => p.commit += d,
                    "rebind" => p.rebind += d,
                    _ => {}
                }
            }
        }
        out.push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsim::{SimTime, SpanContext, SpanIdGen, Subsystem, Trace};

    fn sample_tree() -> SpanTree {
        let mut trace = Trace::new(TraceLevel::Detail);
        let mut gen = SpanIdGen::new(0x200 + 3);
        let t = SimTime::from_micros;
        let root = gen.next();
        root.open(
            &mut trace,
            TraceLevel::Info,
            t(100),
            Subsystem::Migration,
            SpanContext::NONE,
            "migration",
            3,
        );
        let child = gen.next();
        child.open(
            &mut trace,
            TraceLevel::Info,
            t(100),
            Subsystem::Migration,
            root.ctx(),
            "selection",
            3,
        );
        child.close(&mut trace, TraceLevel::Info, t(150), Subsystem::Migration);
        root.close(&mut trace, TraceLevel::Info, t(150), Subsystem::Migration);
        SpanTree::build(&trace)
    }

    #[test]
    fn trace_level_parsing() {
        assert_eq!(
            parse_trace_level(Some("detail"), TraceLevel::Warn),
            TraceLevel::Detail
        );
        assert_eq!(
            parse_trace_level(Some("INFO"), TraceLevel::Warn),
            TraceLevel::Info
        );
        assert_eq!(
            parse_trace_level(Some("bogus"), TraceLevel::Info),
            TraceLevel::Info
        );
        assert_eq!(parse_trace_level(None, TraceLevel::Warn), TraceLevel::Warn);
    }

    #[test]
    fn perfetto_round_trips_through_the_parser() {
        let tree = sample_tree();
        let doc = perfetto_json(&tree);
        let parsed = Json::parse(&doc.pretty()).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .expect("traceEvents array");
        // Two "X" spans plus process/thread metadata.
        let spans: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 2);
        let root = spans
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("migration"))
            .expect("migration event");
        assert_eq!(root.get("ts").and_then(|v| v.as_f64()), Some(100.0));
        assert_eq!(root.get("dur").and_then(|v| v.as_f64()), Some(50.0));
        assert_eq!(root.get("pid").and_then(|v| v.as_f64()), Some(3.0));
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("M")
                && e.get("name").and_then(|n| n.as_str()) == Some("thread_name")
        }));
    }

    #[test]
    fn summary_percentiles() {
        let tree = sample_tree();
        let mut s = SpanSummary::new();
        s.absorb_tree(&tree);
        let rows = s.rows();
        assert_eq!(rows.len(), 2);
        let (name, count, p50, ..) = rows[0];
        assert_eq!(name, "migration");
        assert_eq!(count, 1);
        assert!((p50 - 0.05).abs() < 1e-9, "50us = 0.05ms, got {p50}");
    }
}
