//! Migration: the paper's §3.
//!
//! The [`Migrator`] is the client side of migration — conceptually the
//! migration module of the source workstation's program manager (§4.2). It
//! orchestrates the five steps of §3.1:
//!
//! 1. locate a willing workstation (program-manager group query);
//! 2. initialize the new host (temporary logical-host id, spaces);
//! 3. pre-copy the state (repeated dirty-page rounds);
//! 4. freeze, complete the copy, move the kernel/PM state;
//! 5. unfreeze the new copy, delete the old one, rebind references.
//!
//! Three strategies are implemented:
//!
//! * [`Strategy::PreCopy`] — the paper's contribution;
//! * [`Strategy::FreezeAndCopy`] — the strawman §3.1 argues against
//!   (freeze for the entire copy: seconds of suspension);
//! * [`Strategy::VmFlush`] — the §3.2 virtual-memory variant: flush
//!   modified pages to the file server and let the new host demand-fault
//!   them back (two transfers per dirty page, but the source evacuates
//!   without shipping clean pages).
//!
//! # Crash consistency
//!
//! A migration is a distributed transaction over two program managers and
//! the engine; its explicit states are the [`JobState`] ladder
//! (`Selecting → Initializing → PreCopying → FrozenFinalCopy →
//! InstallingState → Unfreezing`). The commit point is the target's
//! acknowledgement of `InstallState` — before it, the source copy is
//! authoritative and the temporary at the target is garbage the target's
//! watchdog reclaims; after it, the renamed copy at the target is
//! authoritative and the stale source copy is an orphan the lease protocol
//! exterminates. Every coordination message is idempotent on the target
//! side (`InitMigration` re-acks a resident temporary, `InstallState`
//! re-acks an already-committed rename, `UnfreezeMigrated` re-acks a
//! running copy), so the engine may retransmit any step after a timeout
//! without creating a second live copy, and a crash of either party at any
//! registered fault point converges to exactly one copy:
//!
//! * source crash before commit — the target's temporary is reclaimed by
//!   its watchdog; the origin's lease machinery re-executes if the source
//!   never reboots.
//! * source crash after commit — the target copy runs; the source's stale
//!   state died with it (a rebooted source holds nothing: logical hosts do
//!   not survive reboot).
//! * target crash mid-copy — the engine's transfer fails, the source
//!   unfreezes in place (§3.1.3) and remains the one copy.
//! * target crash after commit but before the source learns it — the
//!   unfreeze send times out, the source unfreezes in place; the rebooted
//!   target holds nothing, so the source copy is again the only one.
//!
//! The engine reports each protocol step it crosses as a
//! [`MigEvent::Point`]; the fault matrix (`vsim::fault_points`) hangs
//! crash/partition/corruption injections off these.

use std::collections::{BTreeMap, BTreeSet};

use vkernel::{
    Kernel, KernelOutput, LogicalHostId, Priority, ProcessId, ReplyIn, SendError, SendSeq, XferId,
};
use vmem::SpaceId;
use vnet::HostAddr;
use vservices::{ServiceMsg, SvcError};
use vsim::calib::PAGE_BYTES;
use vsim::{
    CounterId, HistogramId, Metrics, MigrationPhase, ProtocolStep, SimDuration, SimTime, SpanId,
    SpanIdGen, Subsystem, Trace, TraceEvent, TraceLevel,
};

use crate::report::{IterStat, MigFailure, MigrationReport, Milestones};

/// When to stop pre-copying and freeze (§3.1.2: "until the number of
/// modified pages is relatively small or until no significant reduction
/// ... is achieved").
#[derive(Debug, Clone)]
pub struct StopPolicy {
    /// Hard cap on unfrozen copy rounds.
    pub max_iterations: u32,
    /// Freeze once the dirty residue is at most this many bytes.
    pub threshold_bytes: u64,
    /// Freeze when a round shrinks the dirty set by less than this factor
    /// (e.g. 0.9 = require at least a 10% reduction to continue).
    pub min_shrink: f64,
}

impl Default for StopPolicy {
    fn default() -> Self {
        StopPolicy {
            max_iterations: 4,
            threshold_bytes: 16 * PAGE_BYTES,
            min_shrink: 0.9,
        }
    }
}

impl StopPolicy {
    /// A fixed-round policy (ablation A1): exactly `n` unfrozen rounds.
    pub fn fixed(n: u32) -> Self {
        StopPolicy {
            max_iterations: n,
            threshold_bytes: 0,
            min_shrink: 1.0,
        }
    }

    /// Decides whether to freeze now, after `iterations` completed rounds,
    /// with `dirty_bytes` currently dirty and `last_round_bytes` copied in
    /// the latest round.
    pub fn should_freeze(&self, iterations: u32, dirty_bytes: u64, last_round_bytes: u64) -> bool {
        if iterations >= self.max_iterations {
            return true;
        }
        if dirty_bytes <= self.threshold_bytes {
            return true;
        }
        // No significant reduction: the dirty set stopped shrinking.
        if iterations > 1 && dirty_bytes as f64 >= last_round_bytes as f64 * self.min_shrink {
            return true;
        }
        false
    }
}

/// Migration strategy.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// §3.1.2 pre-copy.
    PreCopy(StopPolicy),
    /// Freeze for the whole copy (the baseline the paper improves on).
    FreezeAndCopy,
    /// §3.2: flush modified pages to the file server's paging store; the
    /// new host demand-faults them back.
    VmFlush {
        /// Paging store logical host (on the file-server machine).
        paging_lh: LogicalHostId,
        /// Paging store space.
        paging_space: SpaceId,
        /// Flush-round stop policy.
        stop: StopPolicy,
    },
}

impl Strategy {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::PreCopy(_) => "pre-copy",
            Strategy::FreezeAndCopy => "freeze-and-copy",
            Strategy::VmFlush { .. } => "vm-flush",
        }
    }
}

/// Migration-engine configuration.
#[derive(Debug, Clone)]
pub struct MigrationConfig {
    /// Strategy to use.
    pub strategy: Strategy,
    /// Additional selection attempts after a target declines or dies
    /// ("In our current implementation, we simply give up if the first
    /// attempt at migration fails" — so the paper's value is 0).
    pub retry_limit: u32,
    /// Leave a Demos/MP-style forwarding address on the old host
    /// (ablation A2; requires the kernel's forwarding mode).
    pub leave_forwarding_address: bool,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            strategy: Strategy::PreCopy(StopPolicy::default()),
            retry_limit: 0,
            leave_forwarding_address: false,
        }
    }
}

/// Events the migration engine reports to the cluster runtime.
#[derive(Debug)]
pub enum MigEvent {
    /// The logical host now runs on `to_host`; the runtime must move the
    /// program's behaviour object there.
    Evicted {
        /// Migrated logical host.
        lh: LogicalHostId,
        /// Its new workstation.
        to_host: HostAddr,
    },
    /// Migration finished (successfully or not); full metrics attached.
    Done(Box<MigrationReport>),
    /// The program was destroyed instead (`migrateprog -n` with no host).
    Destroyed {
        /// The destroyed logical host.
        lh: LogicalHostId,
    },
    /// A failed migration unfroze the logical host in place; the runtime
    /// re-queues its program on the CPU.
    UnfrozeInPlace {
        /// The unfrozen logical host.
        lh: LogicalHostId,
    },
    /// The migration crossed a named protocol step (fault-injection
    /// triggers hang off these).
    Phase {
        /// The migrating logical host.
        lh: LogicalHostId,
        /// The step just crossed.
        phase: MigrationPhase,
    },
    /// The migration crossed a registered fault point
    /// ([`vsim::fault_points`]) — finer-grained than [`MigEvent::Phase`].
    /// The runtime resolves the parties involved (source = the emitting
    /// station, target = `target`, origin = the program's lease origin).
    Point {
        /// The migrating logical host.
        lh: LogicalHostId,
        /// The protocol step just crossed.
        step: ProtocolStep,
        /// The target host, once one is chosen.
        target: Option<HostAddr>,
    },
}

/// Outputs of one engine step.
#[derive(Debug, Default)]
pub struct MigOutputs {
    /// Kernel actions to execute.
    pub kernel: Vec<KernelOutput<ServiceMsg>>,
    /// Events for the runtime.
    pub events: Vec<MigEvent>,
}

impl MigOutputs {
    fn kernel(mut self, outs: Vec<KernelOutput<ServiceMsg>>) -> Self {
        self.kernel.extend(outs);
        self
    }
}

/// Program metadata the engine needs for bookkeeping at the target.
#[derive(Debug, Clone)]
pub struct ProgramMeta {
    /// Image name.
    pub image: String,
    /// Priority on the new host.
    pub priority: Priority,
    /// Origin host of the program's lease, if any — travels in
    /// `InstallState` so the lease follows the program to the new host.
    pub origin: Option<HostAddr>,
}

/// Who to answer when the eviction completes.
#[derive(Debug, Clone, Copy)]
pub struct ReplyTo {
    /// Reply as this process (the program manager that received
    /// `migrateprog`).
    pub from: ProcessId,
    /// The requester.
    pub to: ProcessId,
    /// Their transaction.
    pub seq: SendSeq,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Selecting,
    Initializing,
    PreCopying,
    FrozenFinalCopy,
    InstallingState,
    Unfreezing,
}

struct Job {
    lh: LogicalHostId,
    meta: ProgramMeta,
    cfg: MigrationConfig,
    reply_to: Option<ReplyTo>,
    destroy_if_stuck: bool,
    state: JobState,
    started_at: SimTime,
    target: Option<(ProcessId, HostAddr)>,
    /// Hosts that already failed this migration; excluded from
    /// reselection.
    excluded: Vec<HostAddr>,
    temp: LogicalHostId,
    pending_xfers: BTreeSet<XferId>,
    iteration: u32,
    iter_started: SimTime,
    iter_bytes: u64,
    last_round_bytes: u64,
    iterations: Vec<IterStat>,
    residual_bytes: u64,
    freeze_started: Option<SimTime>,
    residual_copy_time: SimDuration,
    kernel_state_cost: SimDuration,
    network_bytes: u64,
    /// Unique bytes the VM-flush target will demand-fetch (plan size).
    fetch_bytes: u64,
    attempts: u32,
    milestones: Milestones,
    /// The migration's root span, open from start to the terminal event.
    root_span: SpanId,
    /// The current top-level phase span (selection, initialization,
    /// precopy_round, freeze). Phases tile the root exactly: each closes
    /// at the instant the next opens.
    phase_span: Option<SpanId>,
    /// The current sub-phase of the freeze window (residual_copy, commit,
    /// rebind), tiling the freeze span the same way.
    freeze_child: Option<SpanId>,
}

/// The migration engine of one workstation.
///
/// Sans-IO like everything else: the runtime routes `SendDone`/`CopyDone`
/// completions for the engine's process id into the handlers below and
/// executes the returned kernel outputs.
pub struct Migrator {
    pid: ProcessId,
    host: HostAddr,
    jobs: BTreeMap<LogicalHostId, Job>,
    by_seq: BTreeMap<SendSeq, LogicalHostId>,
    by_xfer: BTreeMap<XferId, LogicalHostId>,
    temp_base: u32,
    next_temp: u32,
    metrics: Metrics,
    trace: Trace,
    spans: SpanIdGen,
    ctr_started: CounterId,
    ctr_succeeded: CounterId,
    ctr_failed: CounterId,
    ctr_retried: CounterId,
    hist_freeze_ms: HistogramId,
    hist_round_ms: HistogramId,
    hist_residual_kb: HistogramId,
    hist_total_ms: HistogramId,
}

impl Migrator {
    /// Creates the engine. `pid` is its process (in the workstation's
    /// system logical host); `temp_base` starts its private range of
    /// temporary logical-host ids.
    pub fn new(pid: ProcessId, host: HostAddr, temp_base: u32) -> Self {
        let mut metrics = Metrics::new();
        let ctr_started = metrics.counter(Subsystem::Migration, "started");
        let ctr_succeeded = metrics.counter(Subsystem::Migration, "succeeded");
        let ctr_failed = metrics.counter(Subsystem::Migration, "failed");
        let ctr_retried = metrics.counter(Subsystem::Migration, "retried");
        let hist_freeze_ms = metrics.histogram(Subsystem::Migration, "freeze_window_ms", "ms");
        let hist_round_ms = metrics.histogram(Subsystem::Migration, "precopy_round_ms", "ms");
        let hist_residual_kb = metrics.histogram(Subsystem::Migration, "residual_kb", "KB");
        let hist_total_ms = metrics.histogram(Subsystem::Migration, "total_ms", "ms");
        Migrator {
            pid,
            host,
            jobs: BTreeMap::new(),
            by_seq: BTreeMap::new(),
            by_xfer: BTreeMap::new(),
            temp_base,
            next_temp: 0,
            metrics,
            trace: Trace::quiet(),
            spans: SpanIdGen::new(0x200 + host.0 as u64),
            ctr_started,
            ctr_succeeded,
            ctr_failed,
            ctr_retried,
            hist_freeze_ms,
            hist_round_ms,
            hist_residual_kb,
            hist_total_ms,
        }
    }

    /// The engine's process id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// The engine's metrics registry (per-phase durations and outcome
    /// counters).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The engine's trace (freeze/unfreeze and per-round copy events).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable trace handle, e.g. to raise the retained level or drain
    /// records into a cluster-wide trace.
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// True while a migration of `lh` is in progress.
    pub fn migrating(&self, lh: LogicalHostId) -> bool {
        self.jobs.contains_key(&lh)
    }

    /// Active migrations as (logical host, current temporary id), sorted —
    /// the cluster auditor uses this to tell legal transients (a
    /// duplicate copy mid-install, a resident temp) from leaks.
    pub fn active_jobs(&self) -> Vec<(LogicalHostId, LogicalHostId)> {
        let mut v: Vec<_> = self.jobs.iter().map(|(&lh, j)| (lh, j.temp)).collect();
        v.sort_by_key(|&(lh, _)| lh.0);
        v
    }

    /// Records the crossing of a registered fault-point step. Pushed
    /// before the step's own kernel outputs, so an injected crash lands
    /// before the step's messages leave the station.
    fn point(out: &mut MigOutputs, job: &Job, step: ProtocolStep) {
        out.events.push(MigEvent::Point {
            lh: job.lh,
            step,
            target: job.target.map(|(_, h)| h),
        });
    }

    // --- Phase spans. The invariant throughout: top-level phase spans
    // tile the root migration span (each closes exactly when the next
    // opens), and freeze sub-phases tile the freeze span, so
    // `SpanTree::breakdown` of either sums to its parent's duration.

    /// Opens a top-level phase span (direct child of the migration root).
    fn open_phase(&mut self, now: SimTime, job: &mut Job, name: &'static str) {
        let sid = self.spans.next();
        sid.open(
            &mut self.trace,
            TraceLevel::Info,
            now,
            Subsystem::Migration,
            job.root_span.ctx(),
            name,
            self.host.0,
        );
        job.phase_span = Some(sid);
    }

    /// Closes the current phase span (and any open freeze sub-phase).
    fn close_phase(&mut self, now: SimTime, job: &mut Job) {
        if let Some(s) = job.freeze_child.take() {
            s.close(&mut self.trace, TraceLevel::Info, now, Subsystem::Migration);
        }
        if let Some(s) = job.phase_span.take() {
            s.close(&mut self.trace, TraceLevel::Info, now, Subsystem::Migration);
        }
    }

    /// Opens a sub-phase of the freeze window, closing the previous one.
    fn open_freeze_child(&mut self, now: SimTime, job: &mut Job, name: &'static str) {
        if let Some(s) = job.freeze_child.take() {
            s.close(&mut self.trace, TraceLevel::Info, now, Subsystem::Migration);
        }
        let parent = job
            .phase_span
            .expect("freeze sub-phase outside a freeze span")
            .ctx();
        let sid = self.spans.next();
        sid.open(
            &mut self.trace,
            TraceLevel::Info,
            now,
            Subsystem::Migration,
            parent,
            name,
            self.host.0,
        );
        job.freeze_child = Some(sid);
    }

    /// Closes everything still open for the job, root included — the one
    /// terminal path all outcomes (success, failure, abandonment) share.
    fn close_root(&mut self, now: SimTime, job: &mut Job) {
        self.close_phase(now, job);
        job.root_span
            .close(&mut self.trace, TraceLevel::Info, now, Subsystem::Migration);
    }

    /// Begins migrating `lh` away from this workstation.
    ///
    /// # Panics
    ///
    /// Panics if `lh` is not resident or is already migrating.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        &mut self,
        now: SimTime,
        lh: LogicalHostId,
        meta: ProgramMeta,
        cfg: MigrationConfig,
        reply_to: Option<ReplyTo>,
        destroy_if_stuck: bool,
        k: &mut Kernel<ServiceMsg>,
    ) -> MigOutputs {
        assert!(k.is_resident(lh), "migrating a non-resident logical host");
        assert!(!self.jobs.contains_key(&lh), "already migrating {lh}");
        let temp = LogicalHostId(self.temp_base + self.next_temp);
        self.next_temp += 1;
        let root = self.spans.next();
        root.open(
            &mut self.trace,
            TraceLevel::Info,
            now,
            Subsystem::Migration,
            vsim::SpanContext::NONE,
            "migration",
            self.host.0,
        );
        let mut job = Job {
            lh,
            meta,
            cfg,
            reply_to,
            destroy_if_stuck,
            state: JobState::Selecting,
            started_at: now,
            target: None,
            excluded: Vec::new(),
            temp,
            pending_xfers: BTreeSet::new(),
            iteration: 0,
            iter_started: now,
            iter_bytes: 0,
            last_round_bytes: 0,
            iterations: Vec::new(),
            residual_bytes: 0,
            freeze_started: None,
            residual_copy_time: SimDuration::ZERO,
            kernel_state_cost: SimDuration::ZERO,
            network_bytes: 0,
            fetch_bytes: 0,
            attempts: 0,
            milestones: Milestones::default(),
            root_span: root,
            phase_span: None,
            freeze_child: None,
        };
        job.milestones.mark(now, "started");
        self.metrics.inc(self.ctr_started);
        let out = self.select_host(now, &mut job, k);
        self.jobs.insert(lh, job);
        out
    }

    fn select_host(
        &mut self,
        now: SimTime,
        job: &mut Job,
        k: &mut Kernel<ServiceMsg>,
    ) -> MigOutputs {
        job.state = JobState::Selecting;
        job.attempts += 1;
        self.open_phase(now, job, "selection");
        let mut out = MigOutputs::default();
        Self::point(&mut out, job, ProtocolStep::SelectHost);
        let mut exclude_hosts = vec![self.host];
        exclude_hosts.extend(job.excluded.iter().copied());
        let query = ServiceMsg::QueryHost {
            host_name: None,
            exclude_hosts,
        };
        k.set_span_parent(job.phase_span.expect("just opened").ctx());
        let (seq, kouts) = k.send_with_seq(
            now,
            self.pid,
            vkernel::GroupId::PROGRAM_MANAGERS.into(),
            query,
            0,
        );
        self.by_seq.insert(seq, job.lh);
        out.kernel(kouts)
    }

    /// Routes a completion of one of the engine's Sends.
    pub fn handle_send_done(
        &mut self,
        now: SimTime,
        seq: SendSeq,
        result: Result<ReplyIn<ServiceMsg>, SendError>,
        k: &mut Kernel<ServiceMsg>,
    ) -> MigOutputs {
        let Some(lh) = self.by_seq.remove(&seq) else {
            return MigOutputs::default();
        };
        let Some(mut job) = self.jobs.remove(&lh) else {
            return MigOutputs::default();
        };
        let mut out = MigOutputs::default();
        if k.logical_host(job.lh).is_none() {
            // The program exited (and its logical host was destroyed)
            // while a protocol step was in flight.
            return self.abandon_destroyed(now, job, k, out);
        }
        match job.state {
            JobState::Selecting => match result {
                Ok(ReplyIn {
                    body: ServiceMsg::HostCandidate { pm, host, .. },
                    ..
                }) => {
                    job.target = Some((pm, host));
                    job.milestones.mark(now, "host-selected");
                    job.state = JobState::Initializing;
                    self.close_phase(now, &mut job);
                    self.open_phase(now, &mut job, "initialization");
                    Self::point(&mut out, &job, ProtocolStep::InitTarget);
                    let spaces: Vec<(SpaceId, _)> = k
                        .logical_host(lh)
                        .expect("job lh resident")
                        .descriptor()
                        .spaces;
                    let init = ServiceMsg::InitMigration {
                        temp: job.temp,
                        spaces,
                    };
                    k.set_span_parent(job.phase_span.expect("just opened").ctx());
                    let (s, kouts) = k.send_with_seq(now, self.pid, pm.into(), init, 0);
                    self.by_seq.insert(s, lh);
                    out = out.kernel(kouts);
                    self.jobs.insert(lh, job);
                }
                _ => {
                    out = self.no_host(now, job, k, out);
                }
            },
            JobState::Initializing => match result {
                Ok(ReplyIn {
                    body: ServiceMsg::MigrationAccepted { host },
                    ..
                }) => {
                    k.learn_binding(job.temp, host);
                    job.milestones.mark(now, "target-initialized");
                    self.close_phase(now, &mut job);
                    out = self.begin_copying(now, job, k, out);
                }
                _ => {
                    out = self.retry_or_fail(now, job, k, out, MigFailure::TargetRefused);
                }
            },
            JobState::InstallingState => match result {
                Ok(ReplyIn { body, .. }) if body.is_ok() => {
                    job.milestones.mark(now, "state-installed");
                    job.state = JobState::Unfreezing;
                    self.open_freeze_child(now, &mut job, "rebind");
                    // Commit point: the target holds an installed copy.
                    // The phase event precedes the UnfreezeMigrated
                    // transmit in the output stream, so a fault here can
                    // kill the source before step 5 leaves it.
                    out.events.push(MigEvent::Phase {
                        lh: job.lh,
                        phase: MigrationPhase::AfterCommit,
                    });
                    Self::point(&mut out, &job, ProtocolStep::Unfreeze);
                    let (pm, _) = job.target.expect("target chosen");
                    let unfreeze = ServiceMsg::UnfreezeMigrated { lh: job.lh };
                    k.set_span_parent(job.freeze_child.expect("just opened").ctx());
                    let (s, kouts) = k.send_with_seq(now, self.pid, pm.into(), unfreeze, 0);
                    self.by_seq.insert(s, lh);
                    out = out.kernel(kouts);
                    self.jobs.insert(lh, job);
                }
                _ => {
                    out = self.abort_frozen(now, job, k, out, MigFailure::InstallFailed);
                }
            },
            JobState::Unfreezing => match result {
                Ok(ReplyIn { body, .. }) if body.is_ok() => {
                    out = self.finish_success(now, job, k, out);
                }
                _ => {
                    out = self.abort_frozen(now, job, k, out, MigFailure::InstallFailed);
                }
            },
            s => {
                // A stale or duplicate completion (possible around
                // crash-restarts); keep the job as it is.
                let _ = s;
                self.jobs.insert(lh, job);
            }
        }
        out
    }

    /// Routes a completion of one of the engine's bulk copies.
    pub fn handle_copy_done(
        &mut self,
        now: SimTime,
        xfer: XferId,
        result: Result<u64, SendError>,
        k: &mut Kernel<ServiceMsg>,
    ) -> MigOutputs {
        let Some(lh) = self.by_xfer.remove(&xfer) else {
            return MigOutputs::default();
        };
        let Some(mut job) = self.jobs.remove(&lh) else {
            return MigOutputs::default();
        };
        let mut out = MigOutputs::default();
        if k.logical_host(job.lh).is_none() {
            // The program exited (and its logical host was destroyed)
            // while the copy was in flight.
            return self.abandon_destroyed(now, job, k, out);
        }
        match result {
            Ok(bytes) => {
                job.iter_bytes += bytes;
                job.network_bytes += bytes;
                job.pending_xfers.remove(&xfer);
                if !job.pending_xfers.is_empty() {
                    self.jobs.insert(lh, job);
                    return out;
                }
                // Round complete.
                match job.state {
                    JobState::PreCopying => {
                        // Only unfrozen rounds count as pre-copy
                        // iterations; the frozen final copy is the
                        // residual.
                        job.iterations.push(IterStat {
                            bytes: job.iter_bytes,
                            duration: now.since(job.iter_started),
                        });
                        job.last_round_bytes = job.iter_bytes;
                        self.metrics
                            .observe_ms(self.hist_round_ms, now.since(job.iter_started));
                        self.trace.emit(
                            TraceLevel::Detail,
                            now,
                            Subsystem::Migration,
                            TraceEvent::PrecopyRound {
                                lh: job.lh.0,
                                round: job.iteration,
                                dirty_kb: job.iter_bytes / 1024,
                            },
                        );
                        out = self.end_of_round(now, job, k, out);
                    }
                    JobState::FrozenFinalCopy => {
                        job.residual_copy_time =
                            now.since(job.freeze_started.expect("frozen before final copy"));
                        out = self.install_state(now, job, k, out);
                    }
                    s => {
                        // Stale completion for an abandoned round.
                        let _ = s;
                        self.jobs.insert(lh, job);
                    }
                }
            }
            Err(_) => {
                // The target (or paging server) died mid-copy. If frozen,
                // unfreeze in place to avoid timeouts (§3.1.3); an
                // unfrozen copy failure can retry against another host.
                out = if job.freeze_started.is_some() {
                    self.abort_frozen(now, job, k, out, MigFailure::CopyFailed)
                } else {
                    self.retry_or_fail(now, job, k, out, MigFailure::CopyFailed)
                };
            }
        }
        out
    }

    // --- Copy phases. ---

    fn begin_copying(
        &mut self,
        now: SimTime,
        mut job: Job,
        k: &mut Kernel<ServiceMsg>,
        out: MigOutputs,
    ) -> MigOutputs {
        if k.logical_host(job.lh).is_none() {
            return self.abandon_destroyed(now, job, k, out);
        }
        match job.cfg.strategy.clone() {
            Strategy::PreCopy(_) => {
                // Round 1: the complete address spaces, dirty bits cleared
                // first so the round's writes are visible afterwards.
                job.state = JobState::PreCopying;
                job.iteration = 1;
                self.start_round(now, job, k, RoundKind::FullSpaces, out)
            }
            Strategy::FreezeAndCopy => {
                k.freeze(job.lh);
                job.freeze_started = Some(now);
                job.milestones.mark(now, "frozen");
                self.open_phase(now, &mut job, "freeze");
                self.open_freeze_child(now, &mut job, "residual_copy");
                self.trace.emit(
                    TraceLevel::Detail,
                    now,
                    Subsystem::Migration,
                    TraceEvent::Freeze { lh: job.lh.0 },
                );
                job.state = JobState::FrozenFinalCopy;
                job.iteration = 1;
                let mut out = out;
                Self::point(&mut out, &job, ProtocolStep::Freeze);
                let mut total = 0;
                let spaces: Vec<SpaceId> = k
                    .logical_host(job.lh)
                    .expect("resident")
                    .spaces()
                    .map(|s| s.id())
                    .collect();
                for sid in spaces {
                    let space = k
                        .logical_host_mut(job.lh)
                        .and_then(|l| l.space_mut(sid))
                        .expect("space exists");
                    space.clear_dirty();
                    let pages: Vec<u32> = (0..space.total_pages()).collect();
                    total += pages.len() as u64 * PAGE_BYTES;
                    let (xfer, kouts) = k.copy_pages(now, self.pid, job.temp, sid, pages);
                    job.pending_xfers.insert(xfer);
                    self.by_xfer.insert(xfer, job.lh);
                    out = out.kernel(kouts);
                }
                job.residual_bytes = total;
                job.iter_started = now;
                job.iter_bytes = 0;
                Self::point(&mut out, &job, ProtocolStep::ResidualCopy);
                self.jobs.insert(job.lh, job);
                out
            }
            Strategy::VmFlush { .. } => {
                // Round 1: flush every page written since the program
                // started (clean pages reload from the image).
                job.state = JobState::PreCopying;
                job.iteration = 1;
                self.start_round(now, job, k, RoundKind::EverWritten, out)
            }
        }
    }

    fn start_round(
        &mut self,
        now: SimTime,
        mut job: Job,
        k: &mut Kernel<ServiceMsg>,
        kind: RoundKind,
        mut out: MigOutputs,
    ) -> MigOutputs {
        if k.logical_host(job.lh).is_none() {
            return self.abandon_destroyed(now, job, k, out);
        }
        self.open_phase(now, &mut job, "precopy_round");
        job.iter_started = now;
        job.iter_bytes = 0;
        let (dest_lh, dest_space) = match &job.cfg.strategy {
            Strategy::VmFlush {
                paging_lh,
                paging_space,
                ..
            } => (*paging_lh, Some(*paging_space)),
            _ => (job.temp, None),
        };
        let spaces: Vec<SpaceId> = k
            .logical_host(job.lh)
            .expect("resident")
            .spaces()
            .map(|s| s.id())
            .collect();
        let mut any = false;
        for sid in spaces {
            let space = k
                .logical_host_mut(job.lh)
                .and_then(|l| l.space_mut(sid))
                .expect("space exists");
            let pages: Vec<u32> = match kind {
                RoundKind::FullSpaces => {
                    space.clear_dirty();
                    (0..space.total_pages()).collect()
                }
                RoundKind::EverWritten => {
                    space.clear_dirty();
                    space.ever_written_pages()
                }
                RoundKind::Dirty => space.take_dirty(),
            };
            if pages.is_empty() {
                continue;
            }
            any = true;
            let (xfer, kouts) =
                k.copy_pages(now, self.pid, dest_lh, dest_space.unwrap_or(sid), pages);
            job.pending_xfers.insert(xfer);
            self.by_xfer.insert(xfer, job.lh);
            out = out.kernel(kouts);
        }
        if !any {
            // Nothing to copy this round (e.g. a program that never wrote
            // anything): freeze immediately. The zero-width round span
            // still closes so the phase tiling stays exact.
            self.close_phase(now, &mut job);
            return self.freeze_and_final(now, job, k, out);
        }
        self.jobs.insert(job.lh, job);
        out
    }

    fn end_of_round(
        &mut self,
        now: SimTime,
        mut job: Job,
        k: &mut Kernel<ServiceMsg>,
        mut out: MigOutputs,
    ) -> MigOutputs {
        if k.logical_host(job.lh).is_none() {
            return self.abandon_destroyed(now, job, k, out);
        }
        self.close_phase(now, &mut job);
        out.events.push(MigEvent::Phase {
            lh: job.lh,
            phase: MigrationPhase::AfterPrecopyRound(job.iteration),
        });
        Self::point(&mut out, &job, ProtocolStep::PrecopyRound);
        let stop = match &job.cfg.strategy {
            Strategy::PreCopy(p) => p.clone(),
            Strategy::VmFlush { stop, .. } => stop.clone(),
            Strategy::FreezeAndCopy => unreachable!("no rounds in freeze-and-copy"),
        };
        let dirty: u64 = k
            .logical_host(job.lh)
            .expect("resident")
            .spaces()
            .map(|s| s.dirty_bytes())
            .sum();
        if stop.should_freeze(job.iteration, dirty, job.last_round_bytes) {
            self.freeze_and_final(now, job, k, out)
        } else {
            job.iteration += 1;
            self.start_round(now, job, k, RoundKind::Dirty, out)
        }
    }

    fn freeze_and_final(
        &mut self,
        now: SimTime,
        mut job: Job,
        k: &mut Kernel<ServiceMsg>,
        mut out: MigOutputs,
    ) -> MigOutputs {
        if k.logical_host(job.lh).is_none() {
            return self.abandon_destroyed(now, job, k, out);
        }
        k.freeze(job.lh);
        job.freeze_started = Some(now);
        job.milestones.mark(now, "frozen");
        self.open_phase(now, &mut job, "freeze");
        self.open_freeze_child(now, &mut job, "residual_copy");
        self.trace.emit(
            TraceLevel::Detail,
            now,
            Subsystem::Migration,
            TraceEvent::Freeze { lh: job.lh.0 },
        );
        job.state = JobState::FrozenFinalCopy;
        job.iter_started = now;
        job.iter_bytes = 0;
        out.events.push(MigEvent::Phase {
            lh: job.lh,
            phase: MigrationPhase::WhileFrozen,
        });
        Self::point(&mut out, &job, ProtocolStep::Freeze);

        let (dest_lh, dest_space) = match &job.cfg.strategy {
            Strategy::VmFlush {
                paging_lh,
                paging_space,
                ..
            } => (*paging_lh, Some(*paging_space)),
            _ => (job.temp, None),
        };
        let spaces: Vec<SpaceId> = k
            .logical_host(job.lh)
            .expect("resident")
            .spaces()
            .map(|s| s.id())
            .collect();
        let mut residual = 0;
        for sid in spaces {
            let space = k
                .logical_host_mut(job.lh)
                .and_then(|l| l.space_mut(sid))
                .expect("space exists");
            let pages = space.take_dirty();
            if pages.is_empty() {
                continue;
            }
            residual += pages.len() as u64 * PAGE_BYTES;
            let (xfer, kouts) =
                k.copy_pages(now, self.pid, dest_lh, dest_space.unwrap_or(sid), pages);
            job.pending_xfers.insert(xfer);
            self.by_xfer.insert(xfer, job.lh);
            out = out.kernel(kouts);
        }
        job.residual_bytes = residual;
        self.metrics
            .observe(self.hist_residual_kb, residual as f64 / 1024.0);
        self.trace.emit(
            TraceLevel::Detail,
            now,
            Subsystem::Migration,
            TraceEvent::ResidualCopy {
                lh: job.lh.0,
                kb: residual / 1024,
            },
        );
        Self::point(&mut out, &job, ProtocolStep::ResidualCopy);
        if job.pending_xfers.is_empty() {
            // Nothing was dirty: go straight to the kernel-state copy.
            return self.install_state(now, job, k, out);
        }
        self.jobs.insert(job.lh, job);
        out
    }

    fn install_state(
        &mut self,
        now: SimTime,
        mut job: Job,
        k: &mut Kernel<ServiceMsg>,
        mut out: MigOutputs,
    ) -> MigOutputs {
        if k.logical_host(job.lh).is_none() {
            return self.abandon_destroyed(now, job, k, out);
        }
        job.milestones.mark(now, "final-copy-done");
        job.state = JobState::InstallingState;
        self.open_freeze_child(now, &mut job, "commit");
        let record = k.extract_migration_record(job.lh);
        job.kernel_state_cost = record.copy_cost();
        // VM-flush: the target must fetch back everything we flushed —
        // exactly the pages ever written (clean pages reload from the
        // program image).
        let fetch = match &job.cfg.strategy {
            Strategy::VmFlush {
                paging_lh,
                paging_space,
                ..
            } => {
                let l = k.logical_host(job.lh).expect("resident");
                let pages: Vec<(SpaceId, Vec<u32>)> = l
                    .spaces()
                    .map(|s| (s.id(), s.ever_written_pages()))
                    .collect();
                let plan = vservices::FetchPlan {
                    from_lh: *paging_lh,
                    from_space: *paging_space,
                    pages,
                };
                job.fetch_bytes = plan.total_bytes();
                Some(plan)
            }
            _ => None,
        };
        let (pm, _) = job.target.expect("target chosen");
        let install = ServiceMsg::InstallState {
            temp: job.temp,
            record: Box::new(record),
            image: job.meta.image.clone(),
            priority: job.meta.priority,
            fetch,
            origin: job.meta.origin,
        };
        Self::point(&mut out, &job, ProtocolStep::Commit);
        k.set_span_parent(job.freeze_child.expect("commit open").ctx());
        let (s, kouts) = k.send_with_seq(now, self.pid, pm.into(), install, 0);
        self.by_seq.insert(s, job.lh);
        out = out.kernel(kouts);
        self.jobs.insert(job.lh, job);
        out
    }

    // --- Completion paths. ---

    fn finish_success(
        &mut self,
        now: SimTime,
        mut job: Job,
        k: &mut Kernel<ServiceMsg>,
        mut out: MigOutputs,
    ) -> MigOutputs {
        job.milestones.mark(now, "unfrozen-on-target");
        self.close_root(now, &mut job);
        let freeze_time = now.since(job.freeze_started.expect("was frozen"));
        let (_, to_host) = job.target.expect("target chosen");
        self.metrics.inc(self.ctr_succeeded);
        self.metrics.observe_ms(self.hist_freeze_ms, freeze_time);
        self.metrics
            .observe_ms(self.hist_total_ms, now.since(job.started_at));
        self.trace.emit(
            TraceLevel::Detail,
            now,
            Subsystem::Migration,
            TraceEvent::Unfreeze { lh: job.lh.0 },
        );

        // Step 5: delete the old copy; references rebind via the binding
        // cache (or a forwarding address in Demos/MP mode).
        Self::point(&mut out, &job, ProtocolStep::ReleaseSource);
        let kouts = if job.cfg.leave_forwarding_address {
            k.delete_logical_host_with_forwarding(now, job.lh, to_host)
        } else {
            k.delete_logical_host(now, job.lh)
        };
        out = out.kernel(kouts);
        job.milestones.mark(now, "old-copy-deleted");

        if let Some(r) = job.reply_to {
            out = out.kernel(k.reply(now, r.from, r.to, r.seq, ServiceMsg::Ok, 0));
        }

        // The unique flushed pages cross the network a second time when
        // the new host demand-fetches them from the paging store (the
        // fetch itself is real CopyFrom traffic, issued by the target's
        // program manager).
        let double_copied = job.fetch_bytes;
        let report = MigrationReport {
            lh: job.lh,
            image: job.meta.image.clone(),
            from_host: self.host,
            to_host: Some(to_host),
            strategy: job.cfg.strategy.name(),
            iterations: job.iterations.clone(),
            residual_bytes: job.residual_bytes,
            freeze_time,
            kernel_state_cost: job.kernel_state_cost,
            total_time: now.since(job.started_at),
            network_bytes: job.network_bytes + double_copied,
            double_copied_bytes: double_copied,
            success: true,
            failure: None,
        };
        out.events.push(MigEvent::Evicted {
            lh: job.lh,
            to_host,
        });
        out.events.push(MigEvent::Done(Box::new(report)));
        out
    }

    fn no_host(
        &mut self,
        now: SimTime,
        mut job: Job,
        k: &mut Kernel<ServiceMsg>,
        mut out: MigOutputs,
    ) -> MigOutputs {
        if job.destroy_if_stuck {
            self.close_root(now, &mut job);
            // `migrateprog -n`: destroy rather than keep occupying the
            // workstation.
            out = out.kernel(k.delete_logical_host(now, job.lh));
            if let Some(r) = job.reply_to {
                out = out.kernel(k.reply(now, r.from, r.to, r.seq, ServiceMsg::Ok, 0));
            }
            out.events.push(MigEvent::Destroyed { lh: job.lh });
            self.metrics.inc(self.ctr_failed);
            let report = self.report_failure(&job, now, MigFailure::Destroyed);
            out.events.push(MigEvent::Done(Box::new(report)));
            out
        } else {
            self.fail(now, job, k, out, MigFailure::NoHostFound)
        }
    }

    /// The program exited (its logical host was destroyed) while the
    /// migration was still working on it. Abandon the job; any half-built
    /// temporary at the target is reclaimed by that station's watchdog.
    fn abandon_destroyed(
        &mut self,
        now: SimTime,
        mut job: Job,
        k: &mut Kernel<ServiceMsg>,
        out: MigOutputs,
    ) -> MigOutputs {
        for x in std::mem::take(&mut job.pending_xfers) {
            self.by_xfer.remove(&x);
        }
        self.fail(now, job, k, out, MigFailure::Destroyed)
    }

    fn retry_or_fail(
        &mut self,
        now: SimTime,
        mut job: Job,
        k: &mut Kernel<ServiceMsg>,
        out: MigOutputs,
        failure: MigFailure,
    ) -> MigOutputs {
        if job.attempts <= job.cfg.retry_limit {
            // The failed target is excluded from reselection, and the
            // attempt starts over against a fresh temporary id — the old
            // temp (if it was ever built) is reclaimed by the target's
            // own watchdog.
            if let Some((_, host)) = job.target.take() {
                if !job.excluded.contains(&host) {
                    job.excluded.push(host);
                }
            }
            for x in std::mem::take(&mut job.pending_xfers) {
                self.by_xfer.remove(&x);
            }
            job.temp = LogicalHostId(self.temp_base + self.next_temp);
            self.next_temp += 1;
            job.iteration = 0;
            job.iter_bytes = 0;
            job.last_round_bytes = 0;
            job.iterations.clear();
            job.residual_bytes = 0;
            job.freeze_started = None;
            self.close_phase(now, &mut job);
            self.metrics.inc(self.ctr_retried);
            self.trace.emit(
                TraceLevel::Warn,
                now,
                Subsystem::Migration,
                TraceEvent::MigrationRetry {
                    lh: job.lh.0,
                    attempt: job.attempts + 1,
                },
            );
            let o = self.select_host(now, &mut job, k);
            self.jobs.insert(job.lh, job);
            let mut out = out;
            out.kernel.extend(o.kernel);
            out
        } else {
            self.fail(now, job, k, out, failure)
        }
    }

    fn abort_frozen(
        &mut self,
        now: SimTime,
        job: Job,
        k: &mut Kernel<ServiceMsg>,
        mut out: MigOutputs,
        failure: MigFailure,
    ) -> MigOutputs {
        // "The logical host is unfrozen to avoid timeouts" (§3.1.3).
        out = out.kernel(k.unfreeze_in_place(now, job.lh));
        out.events.push(MigEvent::UnfrozeInPlace { lh: job.lh });
        self.trace.emit(
            TraceLevel::Detail,
            now,
            Subsystem::Migration,
            TraceEvent::Unfreeze { lh: job.lh.0 },
        );
        self.fail(now, job, k, out, failure)
    }

    fn fail(
        &mut self,
        now: SimTime,
        mut job: Job,
        k: &mut Kernel<ServiceMsg>,
        mut out: MigOutputs,
        failure: MigFailure,
    ) -> MigOutputs {
        self.close_root(now, &mut job);
        if let Some(r) = job.reply_to {
            out = out.kernel(k.reply(
                now,
                r.from,
                r.to,
                r.seq,
                ServiceMsg::Err(SvcError::UpstreamFailed),
                0,
            ));
        }
        self.metrics.inc(self.ctr_failed);
        let report = self.report_failure(&job, now, failure);
        out.events.push(MigEvent::Done(Box::new(report)));
        out
    }

    fn report_failure(&self, job: &Job, now: SimTime, failure: MigFailure) -> MigrationReport {
        MigrationReport {
            lh: job.lh,
            image: job.meta.image.clone(),
            from_host: self.host,
            to_host: job.target.map(|(_, h)| h),
            strategy: job.cfg.strategy.name(),
            iterations: job.iterations.clone(),
            residual_bytes: job.residual_bytes,
            freeze_time: job
                .freeze_started
                .map(|f| now.since(f))
                .unwrap_or(SimDuration::ZERO),
            kernel_state_cost: job.kernel_state_cost,
            total_time: now.since(job.started_at),
            network_bytes: job.network_bytes,
            double_copied_bytes: 0,
            success: false,
            failure: Some(failure),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum RoundKind {
    /// Copy everything (first pre-copy round).
    FullSpaces,
    /// Copy every page written since program start (first VM-flush round).
    EverWritten,
    /// Copy pages dirtied during the previous round.
    Dirty,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_policy_threshold() {
        let p = StopPolicy {
            max_iterations: 10,
            threshold_bytes: 32 * 1024,
            min_shrink: 0.9,
        };
        assert!(p.should_freeze(1, 16 * 1024, 1_000_000), "under threshold");
        assert!(!p.should_freeze(1, 100 * 1024, 1_000_000), "keep copying");
    }

    #[test]
    fn stop_policy_max_iterations() {
        let p = StopPolicy::default();
        assert!(p.should_freeze(4, 10_000_000, 1));
    }

    #[test]
    fn stop_policy_detects_diminishing_returns() {
        let p = StopPolicy {
            max_iterations: 10,
            threshold_bytes: 0,
            min_shrink: 0.9,
        };
        // Round 2 left nearly as much dirty as round 2 copied: stop.
        assert!(p.should_freeze(2, 95_000, 100_000));
        // Still shrinking fast: continue.
        assert!(!p.should_freeze(2, 40_000, 100_000));
        // Round 1 never stops on the shrink rule (nothing to compare).
        assert!(!p.should_freeze(1, 95_000, 2_000_000));
    }

    #[test]
    fn fixed_policy_runs_exactly_n_rounds() {
        let p = StopPolicy::fixed(2);
        assert!(!p.should_freeze(1, 1_000_000, 1_000_000));
        assert!(p.should_freeze(2, 1_000_000, 1_000_000));
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::PreCopy(StopPolicy::default()).name(), "pre-copy");
        assert_eq!(Strategy::FreezeAndCopy.name(), "freeze-and-copy");
        assert_eq!(
            Strategy::VmFlush {
                paging_lh: LogicalHostId(1),
                paging_space: SpaceId(0),
                stop: StopPolicy::default()
            }
            .name(),
            "vm-flush"
        );
    }

    #[test]
    fn default_config_matches_paper() {
        let c = MigrationConfig::default();
        assert_eq!(c.retry_limit, 0, "paper gives up after the first attempt");
        assert!(!c.leave_forwarding_address, "V leaves no residual state");
        assert!(matches!(c.strategy, Strategy::PreCopy(_)));
    }
}
