//! Measurement records produced by the remote-execution and migration
//! engines; the experiment harness serializes these into the paper's
//! tables.

use vkernel::{LogicalHostId, ProcessId};
use vnet::HostAddr;
use vsim::{SimDuration, SimTime};

/// How a program's execution host was chosen (`@ machine`, `@ *`, local).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecTarget {
    /// Run on the requesting workstation.
    Local,
    /// `program @ machine-name`.
    Named(String),
    /// `program @ *` — "a random idle machine on the network".
    AnyIdle,
}

/// Timing breakdown of one remote execution (experiment E2).
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Image executed.
    pub image: String,
    /// Selection mode.
    pub target: ExecTarget,
    /// Chosen physical host, if any.
    pub chosen_host: Option<HostAddr>,
    /// Chosen host's name.
    pub chosen_name: Option<String>,
    /// Root process of the created program.
    pub root: Option<ProcessId>,
    /// Its logical host.
    pub lh: Option<LogicalHostId>,
    /// Time to the first response of the candidate-host query (the
    /// paper's 23 ms).
    pub selection_time: SimDuration,
    /// Time for program creation: environment setup + image load (the
    /// paper's 40 ms + 330 ms/100 KB).
    pub creation_time: SimDuration,
    /// Time to start the embryonic process.
    pub start_time: SimDuration,
    /// End-to-end.
    pub total_time: SimDuration,
    /// Whether the execution was set up successfully.
    pub success: bool,
}

/// One pre-copy (or flush) round.
#[derive(Debug, Clone, Copy)]
pub struct IterStat {
    /// Bytes copied this round.
    pub bytes: u64,
    /// Wall time of the round.
    pub duration: SimDuration,
}

/// Outcome of one migration (experiments E3–E5, E8, ablations).
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// The migrated logical host.
    pub lh: LogicalHostId,
    /// Its program image.
    pub image: String,
    /// Source workstation.
    pub from_host: HostAddr,
    /// Destination workstation (if one was found).
    pub to_host: Option<HostAddr>,
    /// Strategy used.
    pub strategy: &'static str,
    /// Unfrozen copy rounds, in order (empty for freeze-and-copy).
    pub iterations: Vec<IterStat>,
    /// Bytes copied while the logical host was frozen (the paper's
    /// 0.5–70 KB residual).
    pub residual_bytes: u64,
    /// Wall time the logical host spent frozen (paper: 5–210 ms plus the
    /// kernel-state copy for pre-copy; seconds for freeze-and-copy).
    pub freeze_time: SimDuration,
    /// The modeled kernel/program-manager state-copy cost
    /// (14 ms + 9 ms per process and address space).
    pub kernel_state_cost: SimDuration,
    /// Start of migration to deletion of the old copy.
    pub total_time: SimDuration,
    /// Payload bytes moved over the network on the source→target (or
    /// source→file-server) path, including retransmissions.
    pub network_bytes: u64,
    /// Bytes the VM-flush variant moves twice (source→server, then
    /// server→new host on demand); zero for direct strategies.
    pub double_copied_bytes: u64,
    /// True if the program ended up running on the new host.
    pub success: bool,
    /// Why it failed, when it did.
    pub failure: Option<MigFailure>,
}

impl MigrationReport {
    /// Bytes copied before freezing.
    pub fn precopied_bytes(&self) -> u64 {
        self.iterations.iter().map(|i| i.bytes).sum()
    }
}

/// Why a migration did not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigFailure {
    /// No workstation answered the candidate query.
    NoHostFound,
    /// The chosen target refused or died during initialization.
    TargetRefused,
    /// A copy failed (target crashed mid-transfer); the logical host was
    /// unfrozen in place.
    CopyFailed,
    /// The state install or unfreeze step failed.
    InstallFailed,
    /// The program was destroyed instead (`migrateprog -n`).
    Destroyed,
}

/// A residual dependency detected by the §3.3 auditor.
#[derive(Debug, Clone)]
pub struct ResidualDependency {
    /// The dependent process.
    pub pid: ProcessId,
    /// Where it currently runs.
    pub runs_on: Option<HostAddr>,
    /// The workstation it still depends on.
    pub depends_on: HostAddr,
    /// What the dependency is.
    pub resource: String,
}

/// Timestamped milestone trail for one migration, for narration/debugging.
#[derive(Debug, Clone, Default)]
pub struct Milestones {
    entries: Vec<(SimTime, &'static str)>,
}

impl Milestones {
    /// Records a milestone.
    pub fn mark(&mut self, at: SimTime, what: &'static str) {
        self.entries.push((at, what));
    }

    /// The trail so far.
    pub fn entries(&self) -> &[(SimTime, &'static str)] {
        &self.entries
    }

    /// Time of a named milestone, if recorded.
    pub fn time_of(&self, what: &str) -> Option<SimTime> {
        self.entries
            .iter()
            .find(|(_, w)| *w == what)
            .map(|(t, _)| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precopied_bytes_sums_iterations() {
        let r = MigrationReport {
            lh: LogicalHostId(1),
            image: "tex".into(),
            from_host: HostAddr(0),
            to_host: Some(HostAddr(1)),
            strategy: "pre-copy",
            iterations: vec![
                IterStat {
                    bytes: 2_000_000,
                    duration: SimDuration::from_secs(6),
                },
                IterStat {
                    bytes: 100_000,
                    duration: SimDuration::from_millis(300),
                },
            ],
            residual_bytes: 10_000,
            freeze_time: SimDuration::from_millis(62),
            kernel_state_cost: SimDuration::from_millis(32),
            total_time: SimDuration::from_secs(7),
            network_bytes: 2_110_000,
            double_copied_bytes: 0,
            success: true,
            failure: None,
        };
        assert_eq!(r.precopied_bytes(), 2_100_000);
    }

    #[test]
    fn milestones_lookup() {
        let mut m = Milestones::default();
        m.mark(SimTime::from_micros(10), "frozen");
        m.mark(SimTime::from_micros(50), "unfrozen");
        assert_eq!(m.time_of("frozen"), Some(SimTime::from_micros(10)));
        assert_eq!(m.time_of("missing"), None);
        assert_eq!(m.entries().len(), 2);
    }
}
