//! `vcore` — preemptable remote execution and migration: the paper's
//! contribution.
//!
//! * [`RemoteExecutor`] — `program @ machine` / `program @ *` (§2): the
//!   decentralized first-responder host selection, remote program
//!   creation, and start-up, with the §4.1 timing breakdown.
//! * [`Migrator`] — `migrateprog` (§3): the five-step pre-copy migration,
//!   plus the freeze-and-copy strawman, the §3.2 virtual-memory flush
//!   variant, and a Demos/MP-style forwarding-address mode for the §5
//!   comparison.
//! * [`residual`] — the §3.3 residual-dependency auditor.
//!
//! All engines are sans-IO state machines; `vcluster` wires them to
//! kernels, services and the simulated Ethernet.

mod migration;
mod remote_exec;
mod report;
pub mod residual;

pub use migration::{
    MigEvent, MigOutputs, MigrationConfig, Migrator, ProgramMeta, ReplyTo, StopPolicy, Strategy,
};
pub use remote_exec::{ExecEvent, ExecOutputs, RemoteExecutor};
pub use report::{
    ExecReport, ExecTarget, IterStat, MigFailure, MigrationReport, Milestones, ResidualDependency,
};
