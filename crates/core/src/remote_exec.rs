//! Remote execution: the paper's §2.
//!
//! `program args @ machine` and `program args @ *` from the command
//! interpreter, and the equivalent library routine. The [`RemoteExecutor`]
//! is that library routine: it multicasts a candidate-host query to the
//! program-manager group, takes the *first* response ("it simply selects
//! the program manager that responds first since that is generally the
//! least loaded host"), asks that manager to create the program, and
//! finally starts the embryonic initial process — recording the timing
//! breakdown the paper reports in §4.1.

use std::collections::BTreeMap;

use vkernel::{GroupId, Kernel, KernelOutput, ProcessId, ReplyIn, SendError, SendSeq};
use vservices::{ProgramSpec, ServiceMsg};
use vsim::{SimDuration, SimTime};

use crate::report::{ExecReport, ExecTarget};

/// Events the executor reports to the runtime.
#[derive(Debug)]
pub enum ExecEvent {
    /// Execution set up (or failed); metrics attached.
    Done(Box<ExecReport>),
}

/// Outputs of one executor step.
#[derive(Debug, Default)]
pub struct ExecOutputs {
    /// Kernel actions to execute.
    pub kernel: Vec<KernelOutput<ServiceMsg>>,
    /// Events for the runtime.
    pub events: Vec<ExecEvent>,
}

impl ExecOutputs {
    fn kernel(mut self, outs: Vec<KernelOutput<ServiceMsg>>) -> Self {
        self.kernel.extend(outs);
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Selecting,
    Creating,
    Starting,
}

struct Job {
    spec: ProgramSpec,
    target: ExecTarget,
    state: JobState,
    started_at: SimTime,
    selected_at: Option<SimTime>,
    created_at: Option<SimTime>,
    chosen: Option<(ProcessId, vnet::HostAddr, String)>,
    root: Option<ProcessId>,
    lh: Option<vkernel::LogicalHostId>,
}

/// The `@`-operator implementation: one per requesting process (typically
/// the command interpreter / shell of a workstation).
pub struct RemoteExecutor {
    pid: ProcessId,
    host: vnet::HostAddr,
    local_pm: ProcessId,
    jobs: BTreeMap<u64, Job>,
    by_seq: BTreeMap<SendSeq, u64>,
    next_job: u64,
}

impl RemoteExecutor {
    /// Creates an executor sending as `pid` on `host`, with the
    /// workstation's own program manager for local execution.
    pub fn new(pid: ProcessId, host: vnet::HostAddr, local_pm: ProcessId) -> Self {
        RemoteExecutor {
            pid,
            host,
            local_pm,
            jobs: BTreeMap::new(),
            by_seq: BTreeMap::new(),
            next_job: 0,
        }
    }

    /// The executor's process id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Number of executions still in flight.
    pub fn in_flight(&self) -> usize {
        self.jobs.len()
    }

    /// Begins executing `spec` at `target`.
    pub fn execute(
        &mut self,
        now: SimTime,
        spec: ProgramSpec,
        target: ExecTarget,
        k: &mut Kernel<ServiceMsg>,
    ) -> ExecOutputs {
        let id = self.next_job;
        self.next_job += 1;
        let mut job = Job {
            spec,
            target: target.clone(),
            state: JobState::Selecting,
            started_at: now,
            selected_at: None,
            created_at: None,
            chosen: None,
            root: None,
            lh: None,
        };
        let out = ExecOutputs::default();
        let out = match target {
            ExecTarget::Local => {
                // No selection phase: straight to the local manager.
                job.selected_at = Some(now);
                job.state = JobState::Creating;
                job.chosen = Some((self.local_pm, vnet::HostAddr(0), "local".into()));
                let create = ServiceMsg::CreateProgram(Box::new(job.spec.clone()));
                let (seq, kouts) = k.send_with_seq(now, self.pid, self.local_pm.into(), create, 0);
                self.by_seq.insert(seq, id);
                out.kernel(kouts)
            }
            ExecTarget::Named(name) => {
                let q = ServiceMsg::QueryHost {
                    host_name: Some(name),
                    exclude_hosts: Vec::new(),
                };
                let (seq, kouts) =
                    k.send_with_seq(now, self.pid, GroupId::PROGRAM_MANAGERS.into(), q, 0);
                self.by_seq.insert(seq, id);
                out.kernel(kouts)
            }
            ExecTarget::AnyIdle => {
                // §4.3: "@*" means "some *other* lightly loaded machine";
                // the requesting workstation does not answer its own query.
                let q = ServiceMsg::QueryHost {
                    host_name: None,
                    exclude_hosts: vec![self.host],
                };
                let (seq, kouts) =
                    k.send_with_seq(now, self.pid, GroupId::PROGRAM_MANAGERS.into(), q, 0);
                self.by_seq.insert(seq, id);
                out.kernel(kouts)
            }
        };
        self.jobs.insert(id, job);
        out
    }

    /// Routes a completion of one of the executor's Sends.
    pub fn handle_send_done(
        &mut self,
        now: SimTime,
        seq: SendSeq,
        result: Result<ReplyIn<ServiceMsg>, SendError>,
        k: &mut Kernel<ServiceMsg>,
    ) -> ExecOutputs {
        let Some(id) = self.by_seq.remove(&seq) else {
            return ExecOutputs::default();
        };
        let Some(mut job) = self.jobs.remove(&id) else {
            return ExecOutputs::default();
        };
        let mut out = ExecOutputs::default();
        match (job.state, result) {
            (
                JobState::Selecting,
                Ok(ReplyIn {
                    body:
                        ServiceMsg::HostCandidate {
                            pm,
                            host,
                            host_name,
                            ..
                        },
                    ..
                }),
            ) => {
                job.selected_at = Some(now);
                job.chosen = Some((pm, host, host_name));
                job.state = JobState::Creating;
                let create = ServiceMsg::CreateProgram(Box::new(job.spec.clone()));
                let (s, kouts) = k.send_with_seq(now, self.pid, pm.into(), create, 0);
                self.by_seq.insert(s, id);
                out = out.kernel(kouts);
                self.jobs.insert(id, job);
            }
            (
                JobState::Creating,
                Ok(ReplyIn {
                    body: ServiceMsg::ProgramCreated { root, lh, .. },
                    ..
                }),
            ) => {
                job.created_at = Some(now);
                job.root = Some(root);
                job.lh = Some(lh);
                job.state = JobState::Starting;
                // "The requester initializes the new program space with
                // program arguments, default I/O, and various environment
                // variables ... Finally, it starts the program in
                // execution by replying to its initial process" (§2.1).
                // The environment travels with the start request.
                let (pm, _, _) = *job.chosen.as_ref().expect("chosen in Creating");
                let start = ServiceMsg::StartProgram { root };
                let env_bytes = 512; // Arguments + environment block.
                let (s, kouts) = k.send_with_seq(now, self.pid, pm.into(), start, env_bytes);
                self.by_seq.insert(s, id);
                out = out.kernel(kouts);
                self.jobs.insert(id, job);
            }
            (JobState::Starting, Ok(ReplyIn { body, .. })) if body.is_ok() => {
                out.events
                    .push(ExecEvent::Done(Box::new(self.report(&job, now, true))));
            }
            (_, _) => {
                out.events
                    .push(ExecEvent::Done(Box::new(self.report(&job, now, false))));
            }
        }
        out
    }

    fn report(&self, job: &Job, now: SimTime, success: bool) -> ExecReport {
        let selection_time = job
            .selected_at
            .map(|t| t.since(job.started_at))
            .unwrap_or_else(|| now.since(job.started_at));
        let creation_time = match (job.selected_at, job.created_at) {
            (Some(s), Some(c)) => c.since(s),
            _ => SimDuration::ZERO,
        };
        let start_time = job
            .created_at
            .map(|c| now.since(c))
            .unwrap_or(SimDuration::ZERO);
        ExecReport {
            image: job.spec.image.clone(),
            target: job.target.clone(),
            chosen_host: job.chosen.as_ref().map(|(_, h, _)| *h),
            chosen_name: job.chosen.as_ref().map(|(_, _, n)| n.clone()),
            root: job.root,
            lh: job.lh,
            selection_time,
            creation_time,
            start_time,
            total_time: now.since(job.started_at),
            success,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vkernel::LogicalHostId;

    #[test]
    fn executor_tracks_in_flight_jobs() {
        let pid = ProcessId::new(LogicalHostId(1), 16);
        let pm = ProcessId::new(LogicalHostId(1), 2);
        let ex = RemoteExecutor::new(pid, vnet::HostAddr(0), pm);
        assert_eq!(ex.in_flight(), 0);
        assert_eq!(ex.pid(), pid);
    }
}
