//! Residual-dependency auditing: the paper's §3.3.
//!
//! "Extraneous state that is created in the original host workstation may
//! lead to residual dependencies on this host after the program has been
//! migrated" — open files on a workstation-local file server being the
//! canonical example. The paper notes "there is currently no mechanism for
//! detecting or handling these dependencies"; this auditor *is* such a
//! mechanism (flagged as future work there), plus the convention checks
//! (§6) that avoid the problem in the first place.

use vkernel::{LogicalHostId, ProcessId};
use vnet::HostAddr;
use vservices::{ExecEnv, FileServer};

use crate::report::ResidualDependency;

/// Audits a *workstation-local* file server: any open file owned by a
/// process whose logical host no longer resides on that workstation is a
/// residual dependency (the file access still works via network-transparent
/// IPC, but loads the old host and dies with it).
///
/// `locate` maps a logical host to the physical host it currently runs on
/// (`None` if gone).
pub fn audit_local_file_server(
    fs: &FileServer,
    fs_host: HostAddr,
    locate: impl Fn(LogicalHostId) -> Option<HostAddr>,
) -> Vec<ResidualDependency> {
    let mut out = Vec::new();
    for (_, f) in fs.open_files() {
        let runs_on = locate(f.owner.lh);
        if runs_on != Some(fs_host) {
            out.push(ResidualDependency {
                pid: f.owner,
                runs_on,
                depends_on: fs_host,
                resource: format!("open file \"{}\"", f.name),
            });
        }
    }
    out
}

/// Audits an environment block against the §6 principle: "place the state
/// of a program's execution environment either in its address space or in
/// global servers". Any name-cache binding to a server on `local_host`
/// other than the always-co-resident display is flagged.
///
/// `locate` maps a server process to its current physical host; `is_global`
/// says whether a server is a global (migration-safe) service.
pub fn audit_environment(
    owner: ProcessId,
    env: &ExecEnv,
    runs_on: HostAddr,
    locate: impl Fn(ProcessId) -> Option<HostAddr>,
    is_global: impl Fn(ProcessId) -> bool,
) -> Vec<ResidualDependency> {
    let mut out = Vec::new();
    for (name, &server) in &env.name_cache {
        if is_global(server) {
            continue;
        }
        if name == vservices::NAME_DISPLAY {
            // The display is *supposed* to stay with the user (§2); its
            // host dependency is by design, not residual.
            continue;
        }
        if let Some(h) = locate(server) {
            if h != runs_on {
                out.push(ResidualDependency {
                    pid: owner,
                    runs_on: Some(runs_on),
                    depends_on: h,
                    resource: format!("name-cache binding \"{name}\" -> {server}"),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vkernel::{Kernel, KernelConfig, LogicalHostId, Priority};
    use vmem::SpaceLayout;
    use vservices::ServiceMsg;
    use vsim::SimTime;

    fn pid(lh: u32, i: u32) -> ProcessId {
        ProcessId::new(LogicalHostId(lh), i)
    }

    #[test]
    fn open_file_on_departed_host_is_residual() {
        // Build a tiny world: a local file server on host0, a client
        // process that opens a file, then "migrates" to host1.
        let mut k: Kernel<ServiceMsg> = Kernel::new(HostAddr(0), KernelConfig::default());
        let l = k.create_logical_host(LogicalHostId(1));
        let team = l.create_space(SpaceLayout::tiny());
        let fs_pid = l.create_process(team, Priority::SYSTEM, false);
        let client = pid(7, 16);

        let mut fs = FileServer::new(fs_pid);
        fs.add_file("tmp/scratch", 100);
        // Deliver an Open request by hand.
        let msg = vkernel::MsgIn {
            to: fs_pid,
            from: client,
            seq: vkernel::SendSeq(0),
            body: ServiceMsg::Open {
                name: "tmp/scratch".into(),
                create: false,
            },
            data_bytes: 0,
        };
        let _ = fs.handle_request(SimTime::ZERO, msg, &mut k);
        assert_eq!(fs.open_files().count(), 1);

        // While the client runs on host0: no residual dependency.
        let deps = audit_local_file_server(&fs, HostAddr(0), |_| Some(HostAddr(0)));
        assert!(deps.is_empty());

        // After migration to host1: flagged.
        let deps = audit_local_file_server(&fs, HostAddr(0), |_| Some(HostAddr(1)));
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].depends_on, HostAddr(0));
        assert!(deps[0].resource.contains("tmp/scratch"));

        // After the old host reboots and the program is gone: also flagged
        // (with unknown location).
        let deps = audit_local_file_server(&fs, HostAddr(0), |_| None);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].runs_on, None);
    }

    #[test]
    fn env_audit_flags_local_bindings_but_not_display_or_globals() {
        let display = pid(1, 20);
        let global_fs = pid(2, 16);
        let local_spooler = pid(3, 16);
        let mut env = ExecEnv::standard(display, global_fs);
        env.name_cache.insert("spooler".into(), local_spooler);

        let owner = pid(9, 16);
        let runs_on = HostAddr(5);
        let locate = |p: ProcessId| {
            Some(match p {
                p if p == display => HostAddr(0),
                p if p == global_fs => HostAddr(10),
                _ => HostAddr(0), // The spooler stayed on the old host.
            })
        };
        let is_global = |p: ProcessId| p == global_fs;

        let deps = audit_environment(owner, &env, runs_on, locate, is_global);
        assert_eq!(deps.len(), 1, "{deps:?}");
        assert!(deps[0].resource.contains("spooler"));
        assert_eq!(deps[0].depends_on, HostAddr(0));
    }
}
