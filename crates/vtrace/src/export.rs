//! Perfetto export: series → Chrome Trace Event counter tracks.
//!
//! The span side already exists (`vbench::perfetto_json` writes "X"
//! complete events, one process per station). This module adds the
//! counter side: each sampled series becomes a "C" counter event stream
//! under a dedicated `telemetry` process (pid [`TELEMETRY_PID`]), and an
//! existing span trace can be merged in so queue depth, ready counts,
//! and lease counts render directly above the spans that caused them.

use vsim::{Json, ToJson};

use crate::query::{clipped_points, series_label};
use crate::Window;

/// The pid counter tracks live under; far outside the u16 station
/// address space so it can never collide with a real station lane.
pub const TELEMETRY_PID: u64 = 1_000_000;

/// Renders the artifact's `series` section as a Chrome Trace Event
/// document of "C" counter events, clipped to `win`. When `spans` is a
/// trace document (`traceEvents`), its events are prepended so one
/// Perfetto load shows spans and counters on a shared timeline.
///
/// # Errors
///
/// Fails when the artifact has no `series` section.
pub fn counter_trace(artifact: &Json, spans: Option<&Json>, win: Window) -> Result<Json, String> {
    let list = artifact
        .get("series")
        .and_then(|s| s.get("series"))
        .and_then(Json::as_arr)
        .ok_or("artifact has no series section")?;
    let mut events: Vec<Json> = spans
        .and_then(|t| t.get("traceEvents"))
        .and_then(Json::as_arr)
        .map(<[Json]>::to_vec)
        .unwrap_or_default();
    events.push(Json::obj([
        ("name", "process_name".to_json()),
        ("ph", "M".to_json()),
        ("pid", TELEMETRY_PID.to_json()),
        ("args", Json::obj([("name", "telemetry".to_json())])),
    ]));
    for s in list {
        let label = series_label(s);
        let unit = s.get("unit").and_then(Json::as_str).unwrap_or("value");
        for (t, v) in clipped_points(s, win) {
            events.push(Json::obj([
                ("name", label.as_str().to_json()),
                ("ph", "C".to_json()),
                ("ts", t.to_json()),
                ("pid", TELEMETRY_PID.to_json()),
                ("args", Json::obj([(unit, v.to_json())])),
            ]));
        }
    }
    Ok(Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", "ms".to_json()),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact() -> Json {
        Json::parse(
            r#"{"series": {"interval_us": 1000, "capacity": 8, "sweeps": 3, "series": [
                 {"subsystem": "engine", "name": "queue_depth", "unit": "events",
                  "stride": 1, "seen": 3,
                  "points": [[0, 1.0], [1000, 2.0], [2000, 3.0]]}
               ]}}"#,
        )
        .unwrap()
    }

    #[test]
    fn counters_become_c_events_under_the_telemetry_pid() {
        let out = counter_trace(&artifact(), None, Window::default()).unwrap();
        let events = out.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 1 process_name metadata + 3 points.
        assert_eq!(events.len(), 4);
        let c = &events[1];
        assert_eq!(c.get("ph").and_then(Json::as_str), Some("C"));
        assert_eq!(
            c.get("name").and_then(Json::as_str),
            Some("engine/queue_depth")
        );
        assert_eq!(c.get("pid").and_then(crate::num_u64), Some(TELEMETRY_PID));
        assert_eq!(
            c.get("args")
                .and_then(|a| a.get("events"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn merge_prepends_span_events_and_window_clips() {
        let spans = Json::parse(
            r#"{"traceEvents": [
                 {"name": "freeze", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 0}
               ]}"#,
        )
        .unwrap();
        let win = Window {
            from_us: Some(1000),
            to_us: None,
        };
        let out = counter_trace(&artifact(), Some(&spans), win).unwrap();
        let events = out.get("traceEvents").and_then(Json::as_arr).unwrap();
        // span + metadata + 2 clipped points.
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].get("name").and_then(Json::as_str), Some("freeze"));
    }

    #[test]
    fn missing_series_section_is_an_error() {
        let doc = Json::parse(r#"{"experiment": "x"}"#).unwrap();
        assert!(counter_trace(&doc, None, Window::default()).is_err());
    }
}
