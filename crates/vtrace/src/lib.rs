//! `vtrace` — query library over the telemetry artifacts the bench
//! binaries emit.
//!
//! Every bench artifact is a single JSON document (see
//! `vbench::emit_full`) whose optional `series` section carries the
//! sim-time-sampled [`SeriesReport`](vsim::SeriesReport), whose optional
//! `profile` section carries the engine self-profiler's
//! [`ProfileReport`](vsim::ProfileReport), and whose optional `spans`
//! section carries per-span duration summaries. The companion
//! `<name>_trace.json` files are Chrome Trace Event documents
//! (`traceEvents`). This crate reads both shapes back with
//! [`vsim::Json::parse`] — no external dependencies — and answers the
//! questions the raw JSON makes awkward:
//!
//! * [`query::top`] — hottest event kinds / subsystems from `profile`;
//! * [`query::aggregate`] — windowed rate and p50/p95/p99 over `series`;
//! * [`query::filter`] — cut any document down by subsystem, host, span
//!   name, or sim-time window;
//! * [`export::counter_trace`] — render `series` as Perfetto counter
//!   tracks ("C" events), optionally merged with an existing span trace.
//!
//! All operations are pure functions over [`Json`] so they are testable
//! without touching the filesystem; `main.rs` owns I/O and exit codes.

pub mod export;
pub mod query;

use vsim::Json;

/// Reads and parses a JSON document, mapping both I/O and syntax errors
/// to a displayable string that names the file.
pub fn load(path: &std::path::Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// An inclusive-exclusive sim-time window in microseconds; `None` bounds
/// are open.
#[derive(Clone, Copy, Default)]
pub struct Window {
    /// Inclusive lower bound, simulated microseconds.
    pub from_us: Option<u64>,
    /// Exclusive upper bound, simulated microseconds.
    pub to_us: Option<u64>,
}

impl Window {
    /// True when `t` (µs) falls inside the window.
    #[must_use]
    pub fn contains(&self, t: u64) -> bool {
        self.from_us.is_none_or(|f| t >= f) && self.to_us.is_none_or(|to| t < to)
    }

    /// True when both bounds are open (no filtering).
    #[must_use]
    pub fn is_open(&self) -> bool {
        self.from_us.is_none() && self.to_us.is_none()
    }
}

/// Reads a JSON number as `u64` (negative and fractional values are
/// `None` — artifact timestamps and counts are unsigned integers).
#[must_use]
pub fn num_u64(j: &Json) -> Option<u64> {
    match j {
        Json::UInt(u) => Some(*u),
        Json::Int(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

/// A minimal fixed-width table printer (vtrace cannot depend on
/// `vbench`'s — layering keeps bench-only code out of the tools).
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table with right-padded columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        let all = std::iter::once(&self.header).chain(self.rows.iter());
        for r in all {
            for (i, c) in r.iter().take(cols).enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            let mut first = true;
            for (i, c) in cells.iter().take(cols).enumerate() {
                if !first {
                    out.push_str("  ");
                }
                first = false;
                out.push_str(c);
                if i + 1 < cols {
                    for _ in c.len()..width[i] {
                        out.push(' ');
                    }
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let rule: Vec<String> = width.iter().map(|w| "-".repeat(*w)).collect();
        line(&mut out, &rule);
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_bounds_are_half_open() {
        let w = Window {
            from_us: Some(10),
            to_us: Some(20),
        };
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
        assert!(Window::default().is_open());
        assert!(Window::default().contains(u64::MAX));
    }

    #[test]
    fn table_pads_columns() {
        let mut t = Table::new(&["a", "long"]);
        t.row(vec!["xxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "a    long");
        assert_eq!(lines[1], "---  ----");
        assert_eq!(lines[2], "xxx  1");
    }
}
