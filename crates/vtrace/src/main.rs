//! `vtrace` CLI — query telemetry artifacts and export Perfetto traces.
//!
//! ```text
//! vtrace top       <artifact.json> [--by kind|subsystem] [--limit N]
//! vtrace aggregate <artifact.json> [--series NAME] [--window US] [--from US] [--to US]
//! vtrace filter    <file.json> [--subsystem S] [--host PID] [--span NAME]
//!                              [--from US] [--to US] [--out FILE]
//! vtrace export    <artifact.json> [--spans TRACE.json] [--from US] [--to US] [--out FILE]
//! ```
//!
//! `top` and `aggregate` print tables; `filter` and `export` print JSON
//! (or write `--out`). All times are simulated microseconds. Exit
//! codes: 0 success; 1 the document lacks the queried section; 2 usage.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use vsim::Json;
use vtrace::query::{self, FilterSpec};
use vtrace::{export, load, Table, Window};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    let run = match strs.split_first() {
        Some((&"top", rest)) => cmd_top(rest),
        Some((&"aggregate", rest)) => cmd_aggregate(rest),
        Some((&"filter", rest)) => cmd_filter(rest),
        Some((&"export", rest)) => cmd_export(rest),
        _ => Err(UsageE(Usage(usage_text()))),
    };
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(UsageE(Usage(e))) => {
            eprintln!("vtrace: {e}");
            ExitCode::from(2)
        }
        Err(DataE(Data(e))) => {
            eprintln!("vtrace: {e}");
            ExitCode::from(1)
        }
    }
}

fn usage_text() -> String {
    "usage: vtrace top       <artifact.json> [--by kind|subsystem] [--limit N]\n\
     \x20      vtrace aggregate <artifact.json> [--series NAME] [--window US] [--from US] [--to US]\n\
     \x20      vtrace filter    <file.json> [--subsystem S] [--host PID] [--span NAME] [--from US] [--to US] [--out FILE]\n\
     \x20      vtrace export    <artifact.json> [--spans TRACE.json] [--from US] [--to US] [--out FILE]"
        .to_string()
}

/// A usage / flag error (exit 2).
struct Usage(String);
/// A data error: file unreadable or section missing (exit 1).
struct Data(String);

enum CmdError {
    Usage(Usage),
    Data(Data),
}
use CmdError::{Data as DataE, Usage as UsageE};

impl From<Usage> for CmdError {
    fn from(u: Usage) -> Self {
        UsageE(u)
    }
}
impl From<Data> for CmdError {
    fn from(d: Data) -> Self {
        DataE(d)
    }
}

/// Parsed common flags + positionals.
#[derive(Default)]
struct Flags {
    by: Option<String>,
    limit: Option<usize>,
    series: Option<String>,
    window: Option<u64>,
    from: Option<u64>,
    to: Option<u64>,
    subsystem: Option<String>,
    host: Option<u64>,
    span: Option<String>,
    spans_path: Option<PathBuf>,
    out: Option<PathBuf>,
    positional: Vec<String>,
}

impl Flags {
    fn time_window(&self) -> Window {
        Window {
            from_us: self.from,
            to_us: self.to,
        }
    }

    fn one_path(&self) -> Result<PathBuf, Usage> {
        match self.positional.as_slice() {
            [p] => Ok(PathBuf::from(p)),
            _ => Err(Usage("expected exactly one input path".to_string())),
        }
    }
}

fn parse_flags(rest: &[&str]) -> Result<Flags, Usage> {
    let mut f = Flags::default();
    let mut it = rest.iter();
    while let Some(&a) = it.next() {
        let mut value = |name: &str| -> Result<String, Usage> {
            it.next()
                .map(|s| (*s).to_string())
                .ok_or_else(|| Usage(format!("{name} needs a value")))
        };
        let num = |name: &str, v: String| -> Result<u64, Usage> {
            v.parse()
                .map_err(|_| Usage(format!("{name} needs a number")))
        };
        match a {
            "--by" => f.by = Some(value("--by")?),
            "--limit" => {
                let v = value("--limit")?;
                f.limit = Some(
                    v.parse()
                        .map_err(|_| Usage("--limit needs a number".to_string()))?,
                );
            }
            "--series" => f.series = Some(value("--series")?),
            "--window" => f.window = Some(num("--window", value("--window")?)?),
            "--from" => f.from = Some(num("--from", value("--from")?)?),
            "--to" => f.to = Some(num("--to", value("--to")?)?),
            "--subsystem" => f.subsystem = Some(value("--subsystem")?),
            "--host" => f.host = Some(num("--host", value("--host")?)?),
            "--span" => f.span = Some(value("--span")?),
            "--spans" => f.spans_path = Some(PathBuf::from(value("--spans")?)),
            "--out" => f.out = Some(PathBuf::from(value("--out")?)),
            _ if a.starts_with("--") => return Err(Usage(format!("unknown flag {a}"))),
            _ => f.positional.push(a.to_string()),
        }
    }
    Ok(f)
}

fn read(path: &Path) -> Result<Json, Data> {
    load(path).map_err(Data)
}

fn cmd_top(rest: &[&str]) -> Result<(), CmdError> {
    let f = parse_flags(rest)?;
    let by_subsystem = match f.by.as_deref() {
        None | Some("kind") => false,
        Some("subsystem") => true,
        Some(other) => {
            return Err(UsageE(Usage(format!(
                "--by takes `kind` or `subsystem`, not `{other}`"
            ))))
        }
    };
    let doc = read(&f.one_path()?)?;
    let rows = query::top(&doc, by_subsystem, f.limit.unwrap_or(10)).map_err(Data)?;
    let head = if by_subsystem { "subsystem" } else { "kind" };
    let mut t = Table::new(&[head, "subsystem", "dispatches", "wall ms", "share %"]);
    for r in &rows {
        t.row(vec![
            r.name.clone(),
            r.subsystem.clone(),
            r.dispatches.to_string(),
            format!("{:.3}", r.wall_ns as f64 / 1e6),
            format!("{:.1}", r.share_pct),
        ]);
    }
    print!("{}", t.render());
    Ok(())
}

fn cmd_aggregate(rest: &[&str]) -> Result<(), CmdError> {
    let f = parse_flags(rest)?;
    let doc = read(&f.one_path()?)?;
    let rows =
        query::aggregate(&doc, f.series.as_deref(), f.window, f.time_window()).map_err(Data)?;
    let mut t = Table::new(&[
        "series", "start_us", "points", "rate /s", "p50", "p95", "p99",
    ]);
    for r in &rows {
        t.row(vec![
            r.series.clone(),
            r.start_us.to_string(),
            r.count.to_string(),
            format!("{:.1}", r.rate_per_sec),
            format!("{:.1}", r.p50),
            format!("{:.1}", r.p95),
            format!("{:.1}", r.p99),
        ]);
    }
    print!("{}", t.render());
    Ok(())
}

fn cmd_filter(rest: &[&str]) -> Result<(), CmdError> {
    let f = parse_flags(rest)?;
    let doc = read(&f.one_path()?)?;
    let spec = FilterSpec {
        subsystem: f.subsystem.clone(),
        host: f.host,
        span: f.span.clone(),
        window: f.time_window(),
    };
    write_json(&query::filter(&doc, &spec), f.out.as_deref())
}

fn cmd_export(rest: &[&str]) -> Result<(), CmdError> {
    let f = parse_flags(rest)?;
    let doc = read(&f.one_path()?)?;
    let spans = match &f.spans_path {
        Some(p) => Some(read(p)?),
        None => None,
    };
    let trace = export::counter_trace(&doc, spans.as_ref(), f.time_window()).map_err(Data)?;
    write_json(&trace, f.out.as_deref())
}

fn write_json(doc: &Json, out: Option<&Path>) -> Result<(), CmdError> {
    let text = doc.pretty();
    match out {
        None => {
            print!("{text}");
            Ok(())
        }
        Some(path) => {
            std::fs::write(path, text)
                .map_err(|e| DataE(Data(format!("{}: {e}", path.display()))))?;
            eprintln!("vtrace: wrote {}", path.display());
            Ok(())
        }
    }
}
