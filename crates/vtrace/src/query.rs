//! The three read-side queries: `top`, `aggregate`, and `filter`.
//!
//! Each takes a parsed artifact (or Chrome trace) document and returns
//! plain data — the CLI layer renders it. Ordering is always made total
//! (count/time desc, then name) so output is byte-stable run to run.

use vsim::{Json, Samples, ToJson};

use crate::{num_u64, Window};

/// One `top` row: a profiler slot or a subsystem rollup.
pub struct TopRow {
    /// Event kind, or subsystem name when rolled up with `--by subsystem`.
    pub name: String,
    /// Owning subsystem (equals `name` under subsystem rollup).
    pub subsystem: String,
    /// Dispatches attributed to this row.
    pub dispatches: u64,
    /// Wall nanoseconds attributed (0 under the deterministic null clock).
    pub wall_ns: u64,
    /// Share of the ranking column, percent.
    pub share_pct: f64,
}

/// Ranks the artifact's `profile` section: hottest event kinds (default)
/// or subsystems (`by_subsystem`). Ranks by wall time when any was
/// recorded — i.e. a real [`HostClock`](vsim::HostClock) was injected —
/// and by dispatch count under the null clock, so the same command is
/// useful on both deterministic and profiled artifacts.
///
/// # Errors
///
/// Fails when the artifact has no `profile` section.
pub fn top(artifact: &Json, by_subsystem: bool, limit: usize) -> Result<Vec<TopRow>, String> {
    let slots = artifact
        .get("profile")
        .and_then(|p| p.get("slots"))
        .and_then(Json::as_arr)
        .ok_or("artifact has no profile.slots section")?;
    let mut rows: Vec<TopRow> = Vec::new();
    for s in slots {
        let subsystem = s
            .get("subsystem")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        let kind = s.get("kind").and_then(Json::as_str).unwrap_or("?");
        let name = if by_subsystem {
            subsystem.clone()
        } else {
            kind.to_string()
        };
        let dispatches = s.get("dispatches").and_then(num_u64).unwrap_or(0);
        let wall_ns = s.get("wall_ns").and_then(num_u64).unwrap_or(0);
        match rows.iter_mut().find(|r| r.name == name) {
            Some(r) => {
                r.dispatches += dispatches;
                r.wall_ns += wall_ns;
            }
            None => rows.push(TopRow {
                name,
                subsystem,
                dispatches,
                wall_ns,
                share_pct: 0.0,
            }),
        }
    }
    let total_wall: u64 = rows.iter().map(|r| r.wall_ns).sum();
    let total_disp: u64 = rows.iter().map(|r| r.dispatches).sum();
    let by_wall = total_wall > 0;
    rows.sort_by(|a, b| {
        let key = |r: &TopRow| if by_wall { r.wall_ns } else { r.dispatches };
        key(b).cmp(&key(a)).then_with(|| a.name.cmp(&b.name))
    });
    rows.truncate(limit);
    let denom = if by_wall { total_wall } else { total_disp }.max(1) as f64;
    for r in &mut rows {
        let num = if by_wall { r.wall_ns } else { r.dispatches } as f64;
        r.share_pct = num / denom * 100.0;
    }
    Ok(rows)
}

/// One `aggregate` row: statistics over one series within one window.
pub struct AggRow {
    /// `subsystem/name` of the series.
    pub series: String,
    /// Window start, simulated microseconds.
    pub start_us: u64,
    /// Points that fell in the window.
    pub count: usize,
    /// Mean first-difference per simulated second (0 for a lone point).
    pub rate_per_sec: f64,
    /// Value percentiles over the window (nearest-rank).
    pub p50: f64,
    /// 95th percentile value.
    pub p95: f64,
    /// 99th percentile value.
    pub p99: f64,
}

/// Windowed statistics over the artifact's `series` section. With
/// `window_us = None` each series is one window; otherwise points are
/// bucketed into `[k*window_us, (k+1)*window_us)` buckets. `name`
/// selects a single series (matching `name` or `subsystem/name`);
/// `win` clips the points considered.
///
/// The rate is `(vN - v0) / (tN - t0)` per simulated second — for the
/// cumulative counters the store samples, that is the average event
/// rate across the window.
///
/// # Errors
///
/// Fails when the artifact has no `series` section or `name` matches
/// nothing.
pub fn aggregate(
    artifact: &Json,
    name: Option<&str>,
    window_us: Option<u64>,
    win: Window,
) -> Result<Vec<AggRow>, String> {
    let list = artifact
        .get("series")
        .and_then(|s| s.get("series"))
        .and_then(Json::as_arr)
        .ok_or("artifact has no series section")?;
    let mut rows = Vec::new();
    let mut matched = false;
    for s in list {
        let label = series_label(s);
        if let Some(want) = name {
            let short = s.get("name").and_then(Json::as_str).unwrap_or("");
            if want != label && want != short {
                continue;
            }
        }
        matched = true;
        let points = clipped_points(s, win);
        // Bucket boundaries are absolute multiples of the window width,
        // not offsets from the first point, so rows line up across
        // series sampled at the same instants.
        let bucket_of = |t: u64| window_us.map_or(0, |w| t / w.max(1));
        let mut i = 0;
        while i < points.len() {
            let b = bucket_of(points[i].0);
            let mut j = i;
            while j < points.len() && bucket_of(points[j].0) == b {
                j += 1;
            }
            rows.push(agg_row(
                &label,
                window_us.map_or(points[i].0, |w| b * w),
                &points[i..j],
            ));
            i = j;
        }
    }
    if !matched {
        return Err(match name {
            Some(n) => format!("no series named `{n}`"),
            None => "series section is empty".to_string(),
        });
    }
    Ok(rows)
}

fn agg_row(label: &str, start_us: u64, pts: &[(u64, f64)]) -> AggRow {
    let mut samples = Samples::new();
    for (_, v) in pts {
        samples.add(*v);
    }
    let (first, last) = (pts[0], pts[pts.len() - 1]);
    let span_us = last.0.saturating_sub(first.0);
    let rate = if span_us == 0 {
        0.0
    } else {
        (last.1 - first.1) / (span_us as f64 / 1e6)
    };
    AggRow {
        series: label.to_string(),
        start_us,
        count: pts.len(),
        rate_per_sec: rate,
        p50: samples.percentile(50.0).unwrap_or(0.0),
        p95: samples.percentile(95.0).unwrap_or(0.0),
        p99: samples.percentile(99.0).unwrap_or(0.0),
    }
}

/// `subsystem/name` for one series object.
pub(crate) fn series_label(s: &Json) -> String {
    format!(
        "{}/{}",
        s.get("subsystem").and_then(Json::as_str).unwrap_or("?"),
        s.get("name").and_then(Json::as_str).unwrap_or("?")
    )
}

/// The `[t_us, value]` points of one series, clipped to `win`.
pub(crate) fn clipped_points(s: &Json, win: Window) -> Vec<(u64, f64)> {
    s.get("points")
        .and_then(Json::as_arr)
        .map(|pts| {
            pts.iter()
                .filter_map(|p| {
                    let pair = p.as_arr()?;
                    let t = num_u64(pair.first()?)?;
                    let v = pair.get(1)?.as_f64()?;
                    win.contains(t).then_some((t, v))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Criteria for [`filter`]; unset fields match everything.
#[derive(Default)]
pub struct FilterSpec {
    /// Keep only this subsystem (series + profile slots).
    pub subsystem: Option<String>,
    /// Keep only trace events of this pid (station / physical host).
    pub host: Option<u64>,
    /// Keep only spans (trace events / span rows) with this name.
    pub span: Option<String>,
    /// Clip to this sim-time window.
    pub window: Window,
}

/// Cuts a document down to what matches `spec`, preserving its shape.
///
/// * Chrome trace documents (`traceEvents`): "X"/"C" events are kept
///   when pid, name, and time window all match; "M" metadata events for
///   surviving pids are kept so Perfetto still labels the lanes.
/// * Bench artifacts: `series` entries are kept per subsystem with
///   points clipped to the window, `profile.slots` per subsystem, and
///   `spans` rows per span name; every other key passes through.
pub fn filter(doc: &Json, spec: &FilterSpec) -> Json {
    if doc.get("traceEvents").is_some() {
        return filter_trace(doc, spec);
    }
    let Json::Obj(pairs) = doc else {
        return doc.clone();
    };
    Json::Obj(
        pairs
            .iter()
            .map(|(k, v)| {
                let v = match k.as_str() {
                    "series" => filter_series(v, spec),
                    "profile" => filter_profile(v, spec),
                    "spans" => filter_spans(v, spec),
                    _ => v.clone(),
                };
                (k.clone(), v)
            })
            .collect(),
    )
}

fn filter_trace(doc: &Json, spec: &FilterSpec) -> Json {
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap_or(&[]);
    let keep_event = |e: &Json| -> bool {
        if let Some(h) = spec.host {
            if e.get("pid").and_then(num_u64) != Some(h) {
                return false;
            }
        }
        if e.get("ph").and_then(Json::as_str) == Some("M") {
            // Metadata has no extent; it survives on pid alone.
            return true;
        }
        if let Some(name) = &spec.span {
            if e.get("name").and_then(Json::as_str) != Some(name.as_str()) {
                return false;
            }
        }
        if spec.window.is_open() {
            return true;
        }
        let Some(ts) = e.get("ts").and_then(num_u64) else {
            return false;
        };
        let end = ts + e.get("dur").and_then(num_u64).unwrap_or(0);
        // Keep events that overlap the window at all.
        spec.window.from_us.is_none_or(|f| end >= f) && spec.window.to_us.is_none_or(|to| ts < to)
    };
    let Json::Obj(pairs) = doc else {
        return doc.clone();
    };
    Json::Obj(
        pairs
            .iter()
            .map(|(k, v)| {
                let v = if k == "traceEvents" {
                    Json::arr(events.iter().filter(|e| keep_event(e)).cloned())
                } else {
                    v.clone()
                };
                (k.clone(), v)
            })
            .collect(),
    )
}

fn subsystem_matches(obj: &Json, spec: &FilterSpec) -> bool {
    spec.subsystem
        .as_deref()
        .is_none_or(|want| obj.get("subsystem").and_then(Json::as_str) == Some(want))
}

fn filter_series(section: &Json, spec: &FilterSpec) -> Json {
    let Json::Obj(pairs) = section else {
        return section.clone();
    };
    Json::Obj(
        pairs
            .iter()
            .map(|(k, v)| {
                let v = if k == "series" {
                    Json::arr(
                        v.as_arr()
                            .unwrap_or(&[])
                            .iter()
                            .filter(|s| subsystem_matches(s, spec))
                            .map(|s| clip_series(s, spec.window)),
                    )
                } else {
                    v.clone()
                };
                (k.clone(), v)
            })
            .collect(),
    )
}

fn clip_series(s: &Json, win: Window) -> Json {
    if win.is_open() {
        return s.clone();
    }
    let Json::Obj(pairs) = s else {
        return s.clone();
    };
    Json::Obj(
        pairs
            .iter()
            .map(|(k, v)| {
                let v = if k == "points" {
                    Json::arr(
                        clipped_points(s, win)
                            .into_iter()
                            .map(|(t, val)| Json::arr([t.to_json(), val.to_json()])),
                    )
                } else {
                    v.clone()
                };
                (k.clone(), v)
            })
            .collect(),
    )
}

fn filter_profile(section: &Json, spec: &FilterSpec) -> Json {
    let Json::Obj(pairs) = section else {
        return section.clone();
    };
    Json::Obj(
        pairs
            .iter()
            .map(|(k, v)| {
                let v = if k == "slots" {
                    Json::arr(
                        v.as_arr()
                            .unwrap_or(&[])
                            .iter()
                            .filter(|s| subsystem_matches(s, spec))
                            .cloned(),
                    )
                } else {
                    v.clone()
                };
                (k.clone(), v)
            })
            .collect(),
    )
}

fn filter_spans(section: &Json, spec: &FilterSpec) -> Json {
    let Some(rows) = section.as_arr() else {
        return section.clone();
    };
    Json::arr(
        rows.iter()
            .filter(|r| {
                spec.span
                    .as_deref()
                    .is_none_or(|want| r.get("span").and_then(Json::as_str) == Some(want))
            })
            .cloned(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact() -> Json {
        Json::parse(
            r#"{
              "experiment": "t",
              "series": {
                "interval_us": 1000, "capacity": 8, "sweeps": 4,
                "series": [
                  {"subsystem": "engine", "name": "queue_depth", "unit": "events",
                   "stride": 1, "seen": 4,
                   "points": [[0, 0.0], [1000, 10.0], [2000, 20.0], [3000, 90.0]]},
                  {"subsystem": "cluster", "name": "ready_programs", "unit": "programs",
                   "stride": 1, "seen": 2, "points": [[0, 1.0], [1000, 2.0]]}
                ]
              },
              "profile": {
                "clock": "null",
                "slots": [
                  {"subsystem": "engine", "kind": "Tick", "dispatches": 30, "wall_ns": 0},
                  {"subsystem": "net", "kind": "Frame", "dispatches": 70, "wall_ns": 0}
                ]
              },
              "spans": [
                {"span": "migrate", "count": 2, "p50_ms": 1.0, "p95_ms": 2.0, "p99_ms": 2.0},
                {"span": "freeze", "count": 5, "p50_ms": 0.5, "p95_ms": 0.9, "p99_ms": 0.9}
              ]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn top_ranks_by_dispatches_under_null_clock() {
        let rows = top(&artifact(), false, 10).unwrap();
        assert_eq!(rows[0].name, "Frame");
        assert_eq!(rows[0].dispatches, 70);
        assert!((rows[0].share_pct - 70.0).abs() < 1e-9);
        assert_eq!(rows[1].name, "Tick");
    }

    #[test]
    fn top_ranks_by_wall_when_a_real_clock_ran() {
        let mut a = artifact();
        // Give Tick the larger wall share despite fewer dispatches.
        let slots = a
            .get("profile")
            .and_then(|p| p.get("slots"))
            .and_then(Json::as_arr)
            .unwrap()
            .to_vec();
        let patched: Vec<Json> = slots
            .into_iter()
            .map(|s| {
                let kind = s.get("kind").and_then(Json::as_str).unwrap().to_string();
                let wall = if kind == "Tick" { 900u64 } else { 100 };
                let Json::Obj(pairs) = s else { unreachable!() };
                Json::Obj(
                    pairs
                        .into_iter()
                        .map(|(k, v)| {
                            if k == "wall_ns" {
                                (k, wall.to_json())
                            } else {
                                (k, v)
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        let Json::Obj(top_pairs) = &mut a else {
            unreachable!()
        };
        for (k, v) in top_pairs.iter_mut() {
            if k == "profile" {
                let Json::Obj(pp) = v else { unreachable!() };
                for (pk, pv) in pp.iter_mut() {
                    if pk == "slots" {
                        *pv = Json::Arr(patched.clone());
                    }
                }
            }
        }
        let rows = top(&a, false, 10).unwrap();
        assert_eq!(rows[0].name, "Tick");
        assert!((rows[0].share_pct - 90.0).abs() < 1e-9);
    }

    #[test]
    fn top_rolls_up_by_subsystem_and_truncates() {
        let rows = top(&artifact(), true, 1).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "net");
    }

    #[test]
    fn top_without_profile_is_an_error() {
        let doc = Json::parse(r#"{"experiment": "x"}"#).unwrap();
        assert!(top(&doc, false, 5).is_err());
    }

    #[test]
    fn aggregate_whole_series_computes_rate_and_percentiles() {
        let rows = aggregate(
            &artifact(),
            Some("engine/queue_depth"),
            None,
            Window::default(),
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.count, 4);
        // 90 units over 3000 µs = 30000 per second.
        assert!((r.rate_per_sec - 30_000.0).abs() < 1e-6);
        assert!((r.p50 - 10.0).abs() < 1e-9);
        assert!((r.p99 - 90.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_short_name_matches_too() {
        let rows = aggregate(&artifact(), Some("ready_programs"), None, Window::default());
        assert_eq!(rows.unwrap().len(), 1);
    }

    #[test]
    fn aggregate_windows_bucket_on_absolute_boundaries() {
        let rows = aggregate(
            &artifact(),
            Some("engine/queue_depth"),
            Some(2000),
            Window::default(),
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].start_us, 0);
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[1].start_us, 2000);
        assert_eq!(rows[1].count, 2);
    }

    #[test]
    fn aggregate_unknown_series_is_an_error() {
        assert!(aggregate(&artifact(), Some("nope"), None, Window::default()).is_err());
    }

    #[test]
    fn filter_clips_series_and_slots_and_spans() {
        let spec = FilterSpec {
            subsystem: Some("engine".into()),
            span: Some("freeze".into()),
            window: Window {
                from_us: Some(1000),
                to_us: Some(3000),
            },
            ..FilterSpec::default()
        };
        let out = filter(&artifact(), &spec);
        let series = out
            .get("series")
            .and_then(|s| s.get("series"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(series.len(), 1);
        let pts = series[0].get("points").and_then(Json::as_arr).unwrap();
        assert_eq!(pts.len(), 2);
        let slots = out
            .get("profile")
            .and_then(|p| p.get("slots"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(slots.len(), 1);
        let spans = out.get("spans").and_then(Json::as_arr).unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].get("span").and_then(Json::as_str), Some("freeze"));
        // Untouched keys pass through.
        assert_eq!(out.get("experiment").and_then(Json::as_str), Some("t"));
    }

    #[test]
    fn filter_trace_keeps_overlapping_events_and_metadata() {
        let doc = Json::parse(
            r#"{"traceEvents": [
                 {"name": "freeze", "ph": "X", "ts": 100, "dur": 50, "pid": 1, "tid": 0},
                 {"name": "copy", "ph": "X", "ts": 500, "dur": 50, "pid": 2, "tid": 0},
                 {"name": "process_name", "ph": "M", "pid": 1,
                  "args": {"name": "station 1"}},
                 {"name": "process_name", "ph": "M", "pid": 2,
                  "args": {"name": "station 2"}}
               ], "displayTimeUnit": "ms"}"#,
        )
        .unwrap();
        let spec = FilterSpec {
            host: Some(1),
            ..FilterSpec::default()
        };
        let out = filter(&doc, &spec);
        let events = out.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2); // freeze + station 1 metadata
        let spec = FilterSpec {
            window: Window {
                from_us: Some(120),
                to_us: Some(200),
            },
            ..FilterSpec::default()
        };
        let out = filter(&doc, &spec);
        let events = out.get("traceEvents").and_then(Json::as_arr).unwrap();
        // freeze overlaps [120, 200); copy does not; metadata survives.
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("freeze")));
        assert!(!events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("copy")));
    }
}
