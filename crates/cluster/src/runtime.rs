//! The cluster runtime: the event loop that wires everything together.
//!
//! A [`Cluster`] owns the simulated Ethernet, one [`Workstation`] per
//! station (kernel + program manager + display + shell/executor +
//! migration engine), a dedicated file-server machine, and the programs
//! executing across them. It is the only place that touches the event
//! queue; every other layer is a sans-IO state machine.
//!
//! Per-packet CPU costs: small packets (requests, replies, control) are
//! charged [`vsim::calib::SMALL_PACKET_CPU`] on both the sending and the
//! receiving side; bulk-data packets are *not* (their CPU cost is already
//! inside the calibrated per-unit pacing).

use std::collections::{BTreeMap, VecDeque};

use vcore::{
    ExecEvent, ExecOutputs, ExecTarget, MigEvent, MigOutputs, MigrationConfig, MigrationReport,
    Migrator, ProgramMeta, RemoteExecutor, ReplyTo,
};
use vkernel::{
    Destination, GroupId, Kernel, KernelConfig, KernelOutput, LogicalHostId, MsgIn, Packet,
    Priority, ProcessId, SendSeq, TimerKey, XferId, PROGRAM_MANAGER_INDEX,
};
use vmem::{SpaceId, SpaceLayout};
use vnet::{Delivery, Ethernet, Frame, HostAddr, LossModel, McastGroup};
use vservices::{
    AcceptPolicy, DisplayServer, ExecEnv, FileServer, LeaseConfig, ProgramInfo, ProgramSpec,
    ServiceMsg, SvcEvent, SvcOutputs, SvcToken,
};
use vsim::calib::{CONTEXT_SWITCH, CPU_QUANTUM, SMALL_PACKET_CPU};
use vsim::metrics::GaugeSnapshot;
use vsim::{
    CounterId, DetRng, FaultKind, FaultPlan, FaultPoint, FaultTrigger, HostClock, Metrics,
    MetricsReport, MigrationPhase, Party, Probe, ProfileReport, ProtocolStep, QueueBackend,
    SamplingSpec, SeriesId, SeriesReport, SeriesStore, SimContext, SimDuration, SimTime, SlotId,
    SpanContext, SpanIdGen, SpanTree, Subsystem, Trace, TraceEvent, TraceLevel, TraceSinkSpec,
    PARTY,
};
use vworkload::{
    OwnerState, ProgAction, ProgEvent, ProgramProfile, UserModel, UserModelParams, WorkloadProgram,
};

use crate::audit::{AuditReport, AuditViolation};

/// Multicast group carrying the program-manager process group.
const PM_MCAST: McastGroup = McastGroup(1);

/// Paging-store logical host (on the file-server machine), used by the
/// §3.2 VM-flush migration variant.
pub const PAGING_LH: LogicalHostId = LogicalHostId(900_000);

/// Which service a timer belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvcKind {
    /// Program manager.
    Pm,
    /// File server.
    Fs,
    /// Display server.
    Display,
}

/// Scripted scenario commands (see [`Cluster::at`]).
#[derive(Debug)]
pub enum Command {
    /// Execute a program from workstation `ws`'s shell.
    Exec {
        /// Requesting workstation index.
        ws: usize,
        /// What to run.
        profile: ProgramProfile,
        /// `@`-target.
        target: ExecTarget,
        /// Priority ([`Priority::LOCAL`] or [`Priority::GUEST`]).
        priority: Priority,
    },
    /// `migrateprog` on workstation `ws`.
    Migrate {
        /// Workstation holding the program.
        ws: usize,
        /// The program's logical host (`None` = first guest program).
        lh: Option<LogicalHostId>,
        /// The `-n` flag.
        destroy_if_stuck: bool,
    },
    /// Power a station off (crash).
    Crash {
        /// Station index.
        ws: usize,
    },
    /// Power a station back on (reboot: kernel state is NOT restored).
    Reboot {
        /// Station index.
        ws: usize,
    },
    /// Force the owner-activity state.
    SetOwnerActive {
        /// Station index.
        ws: usize,
        /// New state.
        active: bool,
    },
}

/// Events on the cluster's queue.
#[derive(Debug)]
pub enum Event {
    /// A frame reached a station ("processed" includes receive CPU).
    Frame {
        /// Receiving station.
        host: HostAddr,
        /// The frame.
        frame: Frame<Packet<ServiceMsg>>,
    },
    /// A frame leaves a station (send CPU already charged).
    Transmit {
        /// The frame.
        frame: Frame<Packet<ServiceMsg>>,
    },
    /// A kernel timer fired.
    KernelTimer {
        /// The kernel's station.
        host: HostAddr,
        /// Timer key.
        key: TimerKey,
    },
    /// A service timer fired.
    SvcTimer {
        /// The service's station.
        host: HostAddr,
        /// Which service.
        which: SvcKind,
        /// Its token.
        token: SvcToken,
    },
    /// A CPU quantum ended on a workstation.
    QuantumEnd {
        /// The workstation.
        host: HostAddr,
        /// The program that was running.
        lh: LogicalHostId,
        /// CPU time it received.
        slice: SimDuration,
    },
    /// A program's sleep elapsed (routed by logical host: the program may
    /// have migrated meanwhile).
    SleepDone {
        /// The sleeping program.
        lh: LogicalHostId,
    },
    /// An owner activity transition.
    UserTransition {
        /// The workstation.
        host: HostAddr,
        /// How long the previous state was held.
        held: SimDuration,
    },
    /// A scripted command.
    Command(Command),
    /// A scheduled fault-plan event fires.
    ApplyFault {
        /// What the fault does.
        kind: FaultKind,
    },
    /// A timed partition heals (both directions).
    HealPartition {
        /// First station group.
        a: Vec<HostAddr>,
        /// Second station group.
        b: Vec<HostAddr>,
    },
    /// A periodic invariant-audit checkpoint (see
    /// [`ClusterConfig::audit_every`]).
    AuditTick,
    /// A periodic telemetry sweep (see [`ClusterConfig::sampling`]): the
    /// enrolled time series read their probes at this instant.
    SampleTick,
}

/// A running program: kernel state lives in the kernel; this is the
/// behaviour object plus scheduling bookkeeping. It moves between
/// workstations when the logical host migrates.
pub struct ProgramRuntime {
    /// The behaviour model.
    pub behavior: WorkloadProgram,
    /// Root process.
    pub root: ProcessId,
    /// Team address space.
    pub team: SpaceId,
    /// Priority.
    pub priority: Priority,
    /// CPU still owed for the current `Compute` action.
    pub remaining_cpu: SimDuration,
    /// Outstanding send transaction, if blocked in Send.
    pub awaiting: Option<SendSeq>,
    /// True while queued or running on the CPU.
    pub scheduled: bool,
}

/// One machine on the segment.
pub struct Workstation {
    /// Station address.
    pub host: HostAddr,
    /// Host name (for `@ name`).
    pub name: String,
    /// The kernel.
    pub kernel: Kernel<ServiceMsg>,
    /// The program manager.
    pub pm: vservices::ProgramManager,
    /// The display server.
    pub display: DisplayServer,
    /// A file server, on machines that have one.
    pub fs: Option<FileServer>,
    /// The migration engine.
    pub migrator: Migrator,
    /// The shell's remote executor.
    pub exec: RemoteExecutor,
    /// The shell process.
    pub shell: ProcessId,
    /// The owner model (servers have none).
    pub user: Option<UserModel>,
    /// Programs whose behaviour currently runs here.
    pub programs: BTreeMap<LogicalHostId, ProgramRuntime>,
    /// CPU scheduler: the running program, and the ready queue.
    cpu_current: Option<LogicalHostId>,
    cpu_ready: VecDeque<LogicalHostId>,
    /// CPU time delivered to local-priority programs.
    pub cpu_local: SimDuration,
    /// CPU time delivered to guest programs.
    pub cpu_guest: SimDuration,
    /// True while crashed.
    pub down: bool,
}

impl Workstation {
    /// The workstation's system logical host.
    pub fn system_lh(&self) -> LogicalHostId {
        LogicalHostId(1 + self.host.0 as u32)
    }

    /// Fraction of `elapsed` this workstation's CPU spent on programs.
    pub fn cpu_utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        (self.cpu_local + self.cpu_guest).as_secs_f64() / elapsed.as_secs_f64()
    }
}

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of workstations (excluding the file-server machine).
    pub workstations: usize,
    /// RNG seed.
    pub seed: u64,
    /// Wire loss model.
    pub loss: LossModel,
    /// Kernel tunables.
    pub kernel: KernelConfig,
    /// `@*` acceptance policy.
    pub accept: AcceptPolicy,
    /// Migration engine configuration.
    pub migration: MigrationConfig,
    /// Owner activity model (None = owners never present).
    pub users: Option<UserModelParams>,
    /// Evict guest programs when the owner returns (§1: reclaim "within a
    /// few seconds").
    pub evict_on_owner_return: bool,
    /// Trace verbosity.
    pub trace: TraceLevel,
    /// Where trace records are retained (unbounded, fixed ring, or off);
    /// applies to the cluster trace and every component trace.
    pub trace_sink: TraceSinkSpec,
    /// Pending-event queue backend (heap or timing wheel). Both deliver
    /// bit-identical runs; the wheel is faster at high occupancy.
    pub queue: QueueBackend,
    /// Deterministic fault schedule executed by the runtime.
    pub faults: FaultPlan,
    /// Run the invariant auditor at this interval (`None` = only when a
    /// caller invokes [`Cluster::audit`] explicitly).
    pub audit_every: Option<SimDuration>,
    /// Lease-based liveness tuning, applied to every program manager.
    pub lease: LeaseConfig,
    /// Sample enrolled time series at this sim-time cadence (`None` =
    /// telemetry off; the store still exists but holds no points).
    pub sampling: Option<SamplingSpec>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workstations: 4,
            seed: 1985,
            loss: LossModel::Bernoulli(vsim::calib::DEFAULT_LOSS_PROBABILITY),
            kernel: KernelConfig::default(),
            accept: AcceptPolicy::default(),
            migration: MigrationConfig::default(),
            users: None,
            evict_on_owner_return: false,
            trace: TraceLevel::Warn,
            trace_sink: TraceSinkSpec::Unbounded,
            queue: QueueBackend::Heap,
            faults: FaultPlan::none(),
            audit_every: None,
            lease: LeaseConfig::default(),
            sampling: None,
        }
    }
}

/// Cluster-level counters.
#[derive(Debug, Default, Clone)]
pub struct ClusterStats {
    /// Requests delivered to processes nobody implements.
    pub unroutable_deliveries: u64,
    /// Guest evictions triggered by owners returning.
    pub owner_evictions: u64,
    /// Programs that ran to completion.
    pub programs_finished: u64,
    /// Frames discarded because their checksum failed at the receiver.
    pub corrupt_frames_dropped: u64,
    /// Fault-plan events executed.
    pub faults_injected: u64,
    /// Invariant violations found by the auditor.
    pub audit_violations: u64,
    /// Orphan programs exterminated by lease expiry or revocation.
    pub orphans_exterminated: u64,
    /// Leases rebound to a new host by the origin's liveness probe.
    pub leases_rebound: u64,
    /// Programs re-executed from their origin after being presumed dead.
    pub re_execs: u64,
}

/// The whole simulated cluster.
pub struct Cluster {
    /// The simulation context: event queue, clock, and trace log behind
    /// one surface (see [`SimContext`]).
    pub ctx: SimContext<Event>,
    /// The wire.
    pub net: Ethernet<Packet<ServiceMsg>>,
    /// Machines; index 0 is the file-server machine.
    pub stations: Vec<Workstation>,
    /// Completed remote-execution reports.
    pub exec_reports: Vec<vcore::ExecReport>,
    /// Completed migration reports.
    pub migration_reports: Vec<MigrationReport>,
    /// Cluster counters.
    pub stats: ClusterStats,
    /// Invariant-audit reports collected so far (periodic checkpoints and
    /// explicit [`Cluster::audit`] calls).
    pub audit_reports: Vec<AuditReport>,
    /// Cluster-level metrics (scheduler quanta, routing failures).
    metrics: Metrics,
    ctr_quanta_local: CounterId,
    ctr_quanta_guest: CounterId,
    ctr_unroutable: CounterId,
    ctr_evictions: CounterId,
    ctr_finished: CounterId,
    ctr_corrupt_dropped: CounterId,
    ctr_faults: CounterId,
    ctr_audit_violations: CounterId,
    /// Span ids for cluster-level scheduling spans.
    spans: SpanIdGen,
    /// Sim-time-sampled telemetry (enrolled gauges + cluster aggregates).
    series: SeriesStore,
    sids: SeriesIds,
    /// Pre-interned profiler slots, one per [`Event`] kind.
    slots: EventSlots,
    rng: DetRng,
    cfg: ClusterConfig,
    /// Phase-triggered faults still waiting for their migration step.
    phase_faults: Vec<(Option<u32>, MigrationPhase, FaultKind)>,
    /// Fault-point-triggered faults still waiting for their protocol-step
    /// crossing (one-shot, like `phase_faults`).
    point_faults: Vec<(Option<u32>, FaultPoint, FaultKind)>,
    /// Exec profile and priority by image, kept so a leased program
    /// presumed dead can be executed again from its origin.
    profiles_by_image: BTreeMap<String, (ProgramProfile, Priority)>,
    /// Image of each remotely executing program whose origin granted a
    /// lease; consumed by [`SvcEvent::ReExecNeeded`].
    reexec_images: BTreeMap<LogicalHostId, String>,
    /// Behaviours awaiting their ProgramStarted event, FIFO per image.
    pending_behaviors: BTreeMap<String, VecDeque<WorkloadProgram>>,
    /// Owner-reclaim measurements: (owner returned at, all guests gone at).
    pub reclaim_times: Vec<SimDuration>,
    reclaim_pending: BTreeMap<HostAddr, SimTime>,
}

/// Handles to the cluster's default-enrolled time series.
struct SeriesIds {
    ready: SeriesId,
    frozen: SeriesId,
    migrations: SeriesId,
    leases: SeriesId,
    retransmit: SeriesId,
}

/// One profiler slot per [`Event`] kind, interned at construction so the
/// dispatch loop never searches the slot table.
struct EventSlots {
    frame: SlotId,
    transmit: SlotId,
    kernel_timer: SlotId,
    svc_timer: SlotId,
    quantum_end: SlotId,
    sleep_done: SlotId,
    user_transition: SlotId,
    command: SlotId,
    apply_fault: SlotId,
    heal_partition: SlotId,
    audit_tick: SlotId,
    sample_tick: SlotId,
}

impl EventSlots {
    fn intern(p: &mut vsim::Profiler) -> Self {
        EventSlots {
            frame: p.slot(Subsystem::Net, "Frame"),
            transmit: p.slot(Subsystem::Net, "Transmit"),
            kernel_timer: p.slot(Subsystem::Kernel, "KernelTimer"),
            svc_timer: p.slot(Subsystem::Services, "SvcTimer"),
            quantum_end: p.slot(Subsystem::Cluster, "QuantumEnd"),
            sleep_done: p.slot(Subsystem::Workload, "SleepDone"),
            user_transition: p.slot(Subsystem::Workload, "UserTransition"),
            command: p.slot(Subsystem::Cluster, "Command"),
            apply_fault: p.slot(Subsystem::Cluster, "ApplyFault"),
            heal_partition: p.slot(Subsystem::Net, "HealPartition"),
            audit_tick: p.slot(Subsystem::Cluster, "AuditTick"),
            sample_tick: p.slot(Subsystem::Engine, "SampleTick"),
        }
    }

    fn for_event(&self, ev: &Event) -> SlotId {
        match ev {
            Event::Frame { .. } => self.frame,
            Event::Transmit { .. } => self.transmit,
            Event::KernelTimer { .. } => self.kernel_timer,
            Event::SvcTimer { .. } => self.svc_timer,
            Event::QuantumEnd { .. } => self.quantum_end,
            Event::SleepDone { .. } => self.sleep_done,
            Event::UserTransition { .. } => self.user_transition,
            Event::Command(_) => self.command,
            Event::ApplyFault { .. } => self.apply_fault,
            Event::HealPartition { .. } => self.heal_partition,
            Event::AuditTick => self.audit_tick,
            Event::SampleTick => self.sample_tick,
        }
    }
}

impl Cluster {
    /// Builds a cluster: station 0 is the file-server machine, stations
    /// 1..=N are user workstations named `ws1`, `ws2`, ...
    pub fn new(cfg: ClusterConfig) -> Self {
        let mut rng = DetRng::seed(cfg.seed);
        let mut net = Ethernet::new(cfg.loss.clone(), rng.fork());
        let mut stations = Vec::new();
        let total = cfg.workstations + 1;

        // First pass: create kernels and system processes.
        for i in 0..total {
            let host = net.attach();
            let mut kernel: Kernel<ServiceMsg> = Kernel::new(host, cfg.kernel.clone());
            let system_lh = LogicalHostId(1 + i as u32);
            let l = kernel.create_logical_host(system_lh);
            let team = l.create_space(SpaceLayout {
                code_bytes: 64 * 1024,
                init_data_bytes: 8 * 1024,
                heap_bytes: 64 * 1024,
                stack_bytes: 8 * 1024,
            });
            let pm_pid = l.create_process(team, Priority::SYSTEM, false);
            let display_pid = l.create_process(team, Priority::SYSTEM, false);
            let shell_pid = l.create_process(team, Priority::SYSTEM, false);
            let mig_pid = l.create_process(team, Priority::SYSTEM, false);
            let fs_pid = l.create_process(team, Priority::SYSTEM, false);
            kernel.register_well_known(PROGRAM_MANAGER_INDEX, pm_pid);
            kernel.register_well_known(vkernel::KERNEL_SERVER_INDEX, pm_pid);
            kernel.set_group_route(GroupId::PROGRAM_MANAGERS, PM_MCAST);

            let is_fs_machine = i == 0;
            let name = if is_fs_machine {
                "fileserver".to_string()
            } else {
                format!("ws{i}")
            };
            let accept = if is_fs_machine {
                AcceptPolicy {
                    max_guest_programs: 0,
                    ..cfg.accept.clone()
                }
            } else {
                cfg.accept.clone()
            };
            // The global file server lives on station 0; every PM points
            // at it. Its pid is deterministic: system lh 1, index 16+4.
            let global_fs_pid = ProcessId::new(LogicalHostId(1), vkernel::FIRST_USER_INDEX + 4);
            let mut pm = vservices::ProgramManager::new(
                pm_pid,
                host,
                name.clone(),
                global_fs_pid,
                10_000 * (i as u32 + 1),
                accept,
            );
            pm.set_lease_config(cfg.lease.clone());
            let fs = if is_fs_machine {
                // The paging store for VM-flush migration.
                let pl = kernel.create_logical_host(PAGING_LH);
                pl.create_space_with_id(
                    SpaceId(0),
                    SpaceLayout {
                        code_bytes: 0,
                        init_data_bytes: 0,
                        heap_bytes: 16 * 1024 * 1024,
                        stack_bytes: 0,
                    },
                );
                Some(FileServer::new(fs_pid))
            } else {
                None
            };
            let user = if is_fs_machine {
                None
            } else {
                cfg.users
                    .as_ref()
                    .map(|p| UserModel::new(p.clone(), &mut rng))
            };
            stations.push(Workstation {
                host,
                name,
                kernel,
                pm,
                display: DisplayServer::new(display_pid),
                fs,
                migrator: Migrator::new(mig_pid, host, 1_000_000 + 10_000 * i as u32),
                exec: RemoteExecutor::new(shell_pid, host, pm_pid),
                shell: shell_pid,
                user,
                programs: BTreeMap::new(),
                cpu_current: None,
                cpu_ready: VecDeque::new(),
                cpu_local: SimDuration::ZERO,
                cpu_guest: SimDuration::ZERO,
                down: false,
            });
        }

        // Second pass: group membership and binding seeds.
        let fs_host = stations[0].host;
        for station in &mut stations {
            let pm_pid = station.pm.pid();
            let outs = station.kernel.join_group(GroupId::PROGRAM_MANAGERS, pm_pid);
            for o in outs {
                if let KernelOutput::JoinMcast(g) = o {
                    net.join(g, station.host);
                }
            }
            // Every kernel knows where the file-server machine's system
            // logical host (and the paging store) lives — these would be
            // learned from boot-time name-server traffic in real V.
            station.kernel.learn_binding(LogicalHostId(1), fs_host);
            station.kernel.learn_binding(PAGING_LH, fs_host);
        }

        let mut metrics = Metrics::new();
        let ctr_quanta_local = metrics.counter(Subsystem::Cluster, "quanta_local");
        let ctr_quanta_guest = metrics.counter(Subsystem::Cluster, "quanta_guest");
        let ctr_unroutable = metrics.counter(Subsystem::Cluster, "unroutable_deliveries");
        let ctr_evictions = metrics.counter(Subsystem::Cluster, "owner_evictions");
        let ctr_finished = metrics.counter(Subsystem::Cluster, "programs_finished");
        let ctr_corrupt_dropped = metrics.counter(Subsystem::Cluster, "corrupt_frames_dropped");
        let ctr_faults = metrics.counter(Subsystem::Cluster, "faults_injected");
        let ctr_audit_violations = metrics.counter(Subsystem::Cluster, "audit_violations");
        let mut ctx: SimContext<Event> =
            SimContext::new(cfg.queue, Trace::with_sink(cfg.trace, cfg.trace_sink));
        let slots = EventSlots::intern(ctx.profiler_mut());
        // Default telemetry enrollments. The engine's queue gauges are
        // probed straight out of its registry (re-interning is idempotent,
        // so these are the same ids the engine itself updates); cluster
        // aggregates have no single registry home and are recorded
        // manually on each tick.
        let g_depth = ctx.metrics_mut().gauge(Subsystem::Engine, "queue_depth");
        let g_tombs = ctx.metrics_mut().gauge(Subsystem::Engine, "tombstones");
        let mut series = SeriesStore::new(cfg.sampling.unwrap_or_default());
        series.enroll(
            Subsystem::Engine,
            "queue_depth",
            "events",
            Probe::Gauge(g_depth),
        );
        series.enroll(
            Subsystem::Engine,
            "tombstones",
            "events",
            Probe::Gauge(g_tombs),
        );
        let sids = SeriesIds {
            ready: series.manual(Subsystem::Cluster, "ready_programs", "programs"),
            frozen: series.manual(Subsystem::Cluster, "frozen_programs", "programs"),
            migrations: series.manual(Subsystem::Migration, "inflight_migrations", "migrations"),
            leases: series.manual(Subsystem::Services, "active_leases", "leases"),
            retransmit: series.manual(Subsystem::Kernel, "retransmit_backlog", "sends"),
        };
        let mut cluster = Cluster {
            ctx,
            net,
            stations,
            exec_reports: Vec::new(),
            migration_reports: Vec::new(),
            stats: ClusterStats::default(),
            audit_reports: Vec::new(),
            metrics,
            ctr_quanta_local,
            ctr_quanta_guest,
            ctr_unroutable,
            ctr_evictions,
            ctr_finished,
            ctr_corrupt_dropped,
            ctr_faults,
            ctr_audit_violations,
            spans: SpanIdGen::new(1),
            series,
            sids,
            slots,
            rng,
            cfg,
            phase_faults: Vec::new(),
            point_faults: Vec::new(),
            profiles_by_image: BTreeMap::new(),
            reexec_images: BTreeMap::new(),
            pending_behaviors: BTreeMap::new(),
            reclaim_times: Vec::new(),
            reclaim_pending: BTreeMap::new(),
        };
        // Components are born with quiet traces; give them the cluster's
        // verbosity (and sink choice) so their records survive until
        // merged — or cost nothing when tracing is off.
        let level = cluster.cfg.trace;
        let sink = cluster.cfg.trace_sink;
        *cluster.net.trace_mut() = Trace::with_sink(level, sink);
        for w in &mut cluster.stations {
            *w.kernel.trace_mut() = Trace::with_sink(level, sink);
            *w.migrator.trace_mut() = Trace::with_sink(level, sink);
        }
        cluster.seed_user_transitions();
        // Schedule the fault plan: timed faults go straight on the queue;
        // phase-triggered ones wait for their migration step.
        for ev in cluster.cfg.faults.clone().events {
            match ev.trigger {
                FaultTrigger::At(t) => {
                    cluster
                        .ctx
                        .schedule_at(t, Event::ApplyFault { kind: ev.kind });
                }
                FaultTrigger::OnMigrationPhase { lh, phase } => {
                    cluster.phase_faults.push((lh, phase, ev.kind));
                }
                FaultTrigger::AtFaultPoint { lh, point } => {
                    cluster.point_faults.push((lh, point, ev.kind));
                }
            }
        }
        if let Some(every) = cluster.cfg.audit_every {
            cluster.ctx.schedule_after(every, Event::AuditTick);
        }
        if let Some(spec) = cluster.cfg.sampling {
            cluster.ctx.schedule_after(spec.every, Event::SampleTick);
        }
        cluster
    }

    fn seed_user_transitions(&mut self) {
        for i in 0..self.stations.len() {
            if let Some(u) = &self.stations[i].user {
                let host = self.stations[i].host;
                let active = u.is_active();
                let held = u.holding_time(&mut self.rng);
                self.stations[i].pm.set_owner_active(active);
                self.ctx
                    .schedule_after(held, Event::UserTransition { host, held });
            }
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The dedicated file-server machine's server.
    pub fn file_server(&self) -> &FileServer {
        self.stations[0].fs.as_ref().expect("station 0 has the FS")
    }

    /// Mutable file-server access (for registering images/files).
    pub fn file_server_mut(&mut self) -> &mut FileServer {
        self.stations[0].fs.as_mut().expect("station 0 has the FS")
    }

    /// Registers a program image derived from a profile.
    pub fn add_image(&mut self, profile: &ProgramProfile) {
        let name = profile.name.clone();
        let layout = profile.layout;
        self.file_server_mut().add_image(name, layout);
    }

    /// Station index for a host address.
    pub fn index_of(&self, host: HostAddr) -> usize {
        host.0 as usize
    }

    /// Which station currently hosts logical host `lh`, if any.
    pub fn locate(&self, lh: LogicalHostId) -> Option<HostAddr> {
        self.stations
            .iter()
            .find(|w| w.kernel.is_resident(lh))
            .map(|w| w.host)
    }

    /// The workstation whose *behaviour table* holds program `lh`.
    pub fn behavior_station(&self, lh: LogicalHostId) -> Option<usize> {
        self.stations
            .iter()
            .position(|w| w.programs.contains_key(&lh))
    }

    /// Schedules a scripted command.
    pub fn at(&mut self, t: SimTime, cmd: Command) {
        self.ctx.schedule_at(t, Event::Command(cmd));
    }

    /// Immediately starts executing `profile` from workstation `ws`'s
    /// shell (`ws` is 1-based like host names; station 0 is the file
    /// server).
    pub fn exec(
        &mut self,
        ws: usize,
        profile: ProgramProfile,
        target: ExecTarget,
        priority: Priority,
    ) {
        let display = self.stations[ws].display.pid();
        let fs = self.file_server().pid();
        let env = ExecEnv::standard(display, fs);
        self.exec_with_env(ws, profile, target, priority, env);
    }

    /// Like [`Cluster::exec`] with a caller-built environment — used to
    /// point a program at non-standard servers (e.g. a workstation-local
    /// file server for the §3.3 residual-dependency demonstration).
    pub fn exec_with_env(
        &mut self,
        ws: usize,
        profile: ProgramProfile,
        target: ExecTarget,
        priority: Priority,
        env: ExecEnv,
    ) {
        let now = self.ctx.now();
        self.add_image(&profile);
        self.profiles_by_image
            .insert(profile.name.clone(), (profile.clone(), priority));
        let spec = ProgramSpec {
            image: profile.name.clone(),
            args: Vec::new(),
            priority,
            env: env.clone(),
        };
        self.pending_behaviors
            .entry(profile.name.clone())
            .or_default()
            .push_back(WorkloadProgram::new(profile, env));
        let outs = {
            let w = &mut self.stations[ws];
            let (k, ex) = (&mut w.kernel, &mut w.exec);
            ex.execute(now, spec, target, k)
        };
        self.apply_exec_outputs(ws, outs);
    }

    /// Installs a *workstation-local* file server on `ws` — exactly the
    /// kind of host-bound state §3.3 warns about. Returns its pid.
    ///
    /// # Panics
    ///
    /// Panics if `ws` already has a file server.
    pub fn add_local_file_server(&mut self, ws: usize) -> ProcessId {
        assert!(self.stations[ws].fs.is_none(), "ws already has a server");
        let system_lh = self.stations[ws].system_lh();
        let pid = {
            let l = self.stations[ws]
                .kernel
                .logical_host_mut(system_lh)
                .expect("system lh exists");
            let team = l
                .processes()
                .next()
                .map(|p| p.team)
                .expect("system processes exist");
            l.create_process(team, Priority::SYSTEM, false)
        };
        self.stations[ws].fs = Some(FileServer::new(pid));
        pid
    }

    /// Starts `migrateprog` for `lh` on workstation `ws` via the real IPC
    /// path (shell → PM → migration engine).
    pub fn migrateprog(&mut self, ws: usize, lh: LogicalHostId, destroy_if_stuck: bool) {
        let now = self.ctx.now();
        let shell = self.stations[ws].shell;
        let body = ServiceMsg::MigrateProgram {
            lh,
            destroy_if_stuck,
        };
        // Address "the program manager of whatever workstation hosts lh"
        // through its well-known local group (§2.1) — location-independent
        // even if the program just moved.
        let dest = Destination::Group(GroupId::program_manager_of(lh));
        let outs = self.stations[ws].kernel.send(now, shell, dest, body, 0);
        self.apply_kernel_outputs(ws, outs);
    }

    /// `suspendprog`: freezes a program in place, from any workstation's
    /// shell, via the hosting manager's well-known local group (§2:
    /// suspension works "independent of whether the program is executing
    /// locally or remotely").
    pub fn suspendprog(&mut self, ws: usize, lh: LogicalHostId) {
        self.pm_op(ws, lh, ServiceMsg::SuspendProgram { lh });
    }

    /// `resumeprog`: unfreezes a suspended program.
    pub fn resumeprog(&mut self, ws: usize, lh: LogicalHostId) {
        self.pm_op(ws, lh, ServiceMsg::ResumeProgram { lh });
    }

    fn pm_op(&mut self, ws: usize, lh: LogicalHostId, body: ServiceMsg) {
        let now = self.ctx.now();
        let shell = self.stations[ws].shell;
        let dest = Destination::Group(GroupId::program_manager_of(lh));
        let outs = self.stations[ws].kernel.send(now, shell, dest, body, 0);
        self.apply_kernel_outputs(ws, outs);
    }

    /// Runs until the queue drains or `limit` passes.
    ///
    /// Every dispatch is charged to its event kind's profiler slot; under
    /// the default null clock that costs two free reads and a counter
    /// bump, so the loop stays deterministic and cheap. Bench bins inject
    /// a real clock via [`Cluster::set_host_clock`] to turn the counts
    /// into wall-clock attribution.
    pub fn run_until(&mut self, limit: SimTime) {
        while let Some((_, ev)) = self.ctx.step_due(limit) {
            let slot = self.slots.for_event(&ev);
            let t0 = self.ctx.profiler_mut().begin();
            self.dispatch(ev);
            self.ctx.profiler_mut().end(slot, t0);
        }
    }

    /// Runs for `d` more simulated time, leaving the clock at exactly
    /// `now + d` (events beyond the window stay queued).
    pub fn run_for(&mut self, d: SimDuration) {
        let limit = self.ctx.now() + d;
        self.run_until(limit);
        // Everything at or before `limit` has been delivered; move the
        // clock to the window edge so callers measure fixed windows.
        if self.ctx.now() < limit {
            self.ctx.advance_to(limit);
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// Events still pending on the queue (0 = the cluster has quiesced).
    pub fn pending(&self) -> usize {
        self.ctx.pending()
    }

    /// Events delivered by the engine so far.
    pub fn events_delivered(&self) -> u64 {
        self.ctx.events_delivered()
    }

    /// The cluster trace.
    pub fn trace(&self) -> &Trace {
        self.ctx.trace()
    }

    /// Mutable access to the cluster trace.
    pub fn trace_mut(&mut self) -> &mut Trace {
        self.ctx.trace_mut()
    }

    /// Snapshots every metrics registry in the cluster into one report:
    /// the event engine, the wire, the cluster scheduler, and each
    /// station's kernel + migration engine under the station's name.
    pub fn metrics_report(&self) -> MetricsReport {
        let elapsed = self.ctx.now().since(SimTime::ZERO);
        let mut report = MetricsReport::new();
        report.push(self.ctx.metrics().snapshot("engine"));
        report.push(self.net.metrics().snapshot("net"));
        report.push(self.metrics.snapshot("cluster"));
        for w in &self.stations {
            let mut sm = w.kernel.metrics().snapshot(&w.name);
            let mig = w.migrator.metrics().snapshot(&w.name);
            sm.counters.extend(mig.counters);
            sm.gauges.extend(mig.gauges);
            sm.histograms.extend(mig.histograms);
            let busy = w.cpu_local + w.cpu_guest;
            let ms = |d: SimDuration| d.as_secs_f64() * 1e3;
            sm.gauges.push(GaugeSnapshot {
                subsystem: Subsystem::Cluster,
                name: "cpu_local_ms",
                value: ms(w.cpu_local),
            });
            sm.gauges.push(GaugeSnapshot {
                subsystem: Subsystem::Cluster,
                name: "cpu_guest_ms",
                value: ms(w.cpu_guest),
            });
            sm.gauges.push(GaugeSnapshot {
                subsystem: Subsystem::Cluster,
                name: "cpu_idle_ms",
                value: ms(elapsed.saturating_sub(busy)),
            });
            sm.gauges.push(GaugeSnapshot {
                subsystem: Subsystem::Cluster,
                name: "cpu_utilization",
                value: w.cpu_utilization(elapsed),
            });
            report.push(sm);
        }
        report
    }

    /// Folds every component trace (wire drops, kernel retransmissions
    /// and deferrals, migration phases) into the cluster trace,
    /// time-sorted with the cluster's own records.
    pub fn merge_component_traces(&mut self) {
        for w in &mut self.stations {
            self.ctx.trace_mut().drain_from(w.kernel.trace_mut());
            self.ctx.trace_mut().drain_from(w.migrator.trace_mut());
        }
        self.ctx.trace_mut().drain_from(self.net.trace_mut());
        self.ctx.trace_mut().sort_by_time();
    }

    /// Merges every component trace and builds the causal span tree for the
    /// whole run. Call after the simulation has quiesced; spans still open at
    /// that point (e.g. transactions lost to a destroyed host) show up via
    /// [`SpanTree::unclosed`].
    pub fn span_tree(&mut self) -> SpanTree {
        self.merge_component_traces();
        SpanTree::build(self.ctx.trace())
    }

    // --- Event dispatch. ---

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Transmit { frame } => {
                let now = self.ctx.now();
                let deliveries = self.net.transmit(now, frame);
                self.schedule_deliveries(deliveries);
            }
            Event::Frame { host, frame } => {
                let i = self.index_of(host);
                if self.stations[i].down {
                    return;
                }
                let now = self.ctx.now();
                // Hardware check sequence: a corrupted frame never reaches
                // the kernel; the sender recovers by retransmission.
                if !frame.checksum_valid() {
                    self.stats.corrupt_frames_dropped += 1;
                    self.metrics.inc(self.ctr_corrupt_dropped);
                    self.ctx.warn(
                        Subsystem::Net,
                        TraceEvent::CorruptFrame {
                            from: frame.src.0,
                            to: host.0,
                            bytes: frame.payload_bytes,
                        },
                    );
                    return;
                }
                let outs = self.stations[i].kernel.handle_frame(now, frame);
                self.apply_kernel_outputs(i, outs);
            }
            Event::KernelTimer { host, key } => {
                let i = self.index_of(host);
                if self.stations[i].down {
                    return;
                }
                let now = self.ctx.now();
                let outs = self.stations[i].kernel.handle_timer(now, key);
                self.apply_kernel_outputs(i, outs);
            }
            Event::SvcTimer { host, which, token } => {
                let i = self.index_of(host);
                if self.stations[i].down {
                    return;
                }
                let now = self.ctx.now();
                let outs = {
                    let w = &mut self.stations[i];
                    match which {
                        SvcKind::Pm => w.pm.handle_timer(now, token, &mut w.kernel),
                        SvcKind::Fs => match &mut w.fs {
                            Some(fs) => fs.handle_timer(now, token, &mut w.kernel),
                            None => SvcOutputs::new(),
                        },
                        SvcKind::Display => w.display.handle_timer(now, token, &mut w.kernel),
                    }
                };
                self.apply_svc_outputs(i, which, outs);
            }
            Event::QuantumEnd { host, lh, slice } => self.on_quantum_end(host, lh, slice),
            Event::SleepDone { lh } => self.on_sleep_done(lh),
            Event::UserTransition { host, held } => self.on_user_transition(host, held),
            Event::Command(cmd) => self.on_command(cmd),
            Event::ApplyFault { kind } => self.apply_fault(kind),
            Event::HealPartition { a, b } => self.net.heal(&a, &b),
            Event::AuditTick => {
                self.audit(false);
                // Re-arm only while other work remains, so periodic audits
                // stop at quiescence instead of keeping the queue alive.
                if self.ctx.pending() > 0 {
                    if let Some(every) = self.cfg.audit_every {
                        self.ctx.schedule_after(every, Event::AuditTick);
                    }
                }
            }
            Event::SampleTick => {
                self.take_sample();
                // Same re-arm rule as AuditTick: sampling follows the
                // simulation, it must never keep the queue alive.
                if self.ctx.pending() > 0 {
                    if let Some(spec) = self.cfg.sampling {
                        self.ctx.schedule_after(spec.every, Event::SampleTick);
                    }
                }
            }
        }
    }

    /// One telemetry sweep: records the cluster aggregates into their
    /// manual series, then reads every enrolled probe out of the engine
    /// registry — all stamped with the same instant.
    fn take_sample(&mut self) {
        let now = self.ctx.now();
        let mut ready = 0usize;
        let mut frozen = 0usize;
        let mut migrations = 0usize;
        let mut leases = 0usize;
        let mut retransmit = 0usize;
        for w in &self.stations {
            if w.down {
                continue;
            }
            ready += w.cpu_ready.len() + usize::from(w.cpu_current.is_some());
            frozen += w
                .kernel
                .resident_lhs()
                .into_iter()
                .filter(|&lh| w.kernel.logical_host(lh).is_some_and(|l| l.is_frozen()))
                .count();
            migrations += w.migrator.active_jobs().len();
            leases += w.pm.granted_leases().len();
            retransmit += w.kernel.outstanding_sends().len();
        }
        self.series.record(self.sids.ready, now, ready as f64);
        self.series.record(self.sids.frozen, now, frozen as f64);
        self.series
            .record(self.sids.migrations, now, migrations as f64);
        self.series.record(self.sids.leases, now, leases as f64);
        self.series
            .record(self.sids.retransmit, now, retransmit as f64);
        self.series.sample(now, self.ctx.metrics());
    }

    /// The telemetry store (enrolled engine gauges + cluster aggregates).
    pub fn series(&self) -> &SeriesStore {
        &self.series
    }

    /// Mutable telemetry access, e.g. to enroll scenario-specific series
    /// before the run starts.
    pub fn series_mut(&mut self) -> &mut SeriesStore {
        &mut self.series
    }

    /// Snapshots every sampled series (the `series` artifact section).
    pub fn series_report(&self) -> SeriesReport {
        self.series.report()
    }

    /// Snapshots the dispatch profiler (the `profile` artifact section).
    pub fn profile_report(&self) -> ProfileReport {
        self.ctx.profiler().report()
    }

    /// Injects a real host clock so dispatch profiling attributes wall
    /// time. Bench binaries only — library and test code stays on the
    /// deterministic null clock.
    pub fn set_host_clock(&mut self, clock: Box<dyn HostClock>) {
        self.ctx.set_host_clock(clock);
    }

    // --- Fault injection. ---

    /// Executes one fault-plan event against the live cluster.
    fn apply_fault(&mut self, kind: FaultKind) {
        let now = self.ctx.now();
        self.stats.faults_injected += 1;
        self.metrics.inc(self.ctr_faults);
        self.ctx.warn(
            Subsystem::Cluster,
            TraceEvent::FaultInjected { kind: kind.label() },
        );
        match kind {
            FaultKind::Crash { ws, reboot_after } => {
                let ws = ws as usize;
                if ws >= self.stations.len() || self.stations[ws].down {
                    return;
                }
                self.on_command(Command::Crash { ws });
                if let Some(d) = reboot_after {
                    self.ctx
                        .schedule_after(d, Event::Command(Command::Reboot { ws }));
                }
            }
            FaultKind::Partition {
                a,
                b,
                symmetric,
                heal_after,
            } => {
                let hosts = |group: &[u16]| -> Vec<HostAddr> {
                    group
                        .iter()
                        .filter(|&&w| (w as usize) < self.stations.len())
                        .map(|&w| self.stations[w as usize].host)
                        .collect()
                };
                let (ha, hb) = (hosts(&a), hosts(&b));
                self.net.partition(&ha, &hb, symmetric);
                if let Some(d) = heal_after {
                    self.ctx
                        .schedule_after(d, Event::HealPartition { a: ha, b: hb });
                }
            }
            FaultKind::LatencySpike {
                from,
                to,
                extra,
                duration,
            } => {
                if (from as usize) < self.stations.len() && (to as usize) < self.stations.len() {
                    let f = self.stations[from as usize].host;
                    let t = self.stations[to as usize].host;
                    self.net.set_link_latency(f, t, extra, now + duration);
                }
            }
            FaultKind::Corrupt {
                probability,
                duration,
            } => {
                self.net.set_corruption(probability, now + duration);
            }
            FaultKind::ServiceRestart { ws } => {
                let ws = ws as usize;
                if ws >= self.stations.len() || self.stations[ws].down {
                    return;
                }
                // The manager process dies and restarts: the kernel aborts
                // the transactions it was serving (clients re-deliver by
                // retransmission) and the manager re-arms its reclaim
                // watchdogs from what survives in the kernel's tables.
                let outs = {
                    let w = &mut self.stations[ws];
                    let pm_pid = w.pm.pid();
                    w.kernel.abort_server_transactions(pm_pid);
                    w.pm.restart(&w.kernel)
                };
                self.apply_svc_outputs(ws, SvcKind::Pm, outs);
            }
        }
    }

    /// Records an audit violation in the trace, stats, and metrics.
    pub(crate) fn note_violation(&mut self, v: &AuditViolation) {
        self.stats.audit_violations += 1;
        self.metrics.inc(self.ctr_audit_violations);
        self.ctx.warn(
            Subsystem::Cluster,
            TraceEvent::AuditViolation {
                kind: v.kind(),
                lh: v.lh().map_or(0, |l| l.0),
            },
        );
    }

    fn schedule_deliveries(&mut self, deliveries: Vec<Delivery<Packet<ServiceMsg>>>) {
        for Delivery { to, at, frame } in deliveries {
            // Receive-side CPU for small packets.
            let at = if is_bulk(&frame.payload) {
                at
            } else {
                at + SMALL_PACKET_CPU
            };
            self.ctx.schedule_at(at, Event::Frame { host: to, frame });
        }
    }

    fn apply_kernel_outputs(&mut self, i: usize, outs: Vec<KernelOutput<ServiceMsg>>) {
        let host = self.stations[i].host;
        for o in outs {
            match o {
                KernelOutput::Transmit(frame) => {
                    if is_bulk(&frame.payload) {
                        let now = self.ctx.now();
                        let deliveries = self.net.transmit(now, frame);
                        self.schedule_deliveries(deliveries);
                    } else {
                        // Send-side CPU.
                        self.ctx
                            .schedule_after(SMALL_PACKET_CPU, Event::Transmit { frame });
                    }
                }
                KernelOutput::SetTimer { key, after } => {
                    self.ctx
                        .schedule_after(after, Event::KernelTimer { host, key });
                }
                KernelOutput::Deliver(msg) => self.route_delivery(i, msg),
                KernelOutput::SendDone { pid, seq, result } => {
                    self.route_send_done(i, pid, seq, result)
                }
                KernelOutput::CopyDone {
                    xfer,
                    initiator,
                    result,
                } => self.route_copy_done(i, xfer, initiator, result),
                KernelOutput::JoinMcast(g) => self.net.join(g, host),
                KernelOutput::LeaveMcast(g) => self.net.leave(g, host),
            }
        }
    }

    fn apply_svc_outputs(&mut self, i: usize, which: SvcKind, outs: SvcOutputs) {
        let host = self.stations[i].host;
        for (token, after) in outs.timers {
            self.ctx
                .schedule_after(after, Event::SvcTimer { host, which, token });
        }
        for e in outs.events {
            self.on_svc_event(i, e);
        }
        self.apply_kernel_outputs(i, outs.kernel);
    }

    fn apply_mig_outputs(&mut self, i: usize, outs: MigOutputs) {
        for e in outs.events {
            self.on_mig_event(i, e);
        }
        self.apply_kernel_outputs(i, outs.kernel);
    }

    fn apply_exec_outputs(&mut self, i: usize, outs: ExecOutputs) {
        for e in outs.events {
            match e {
                ExecEvent::Done(report) => {
                    if self.ctx.trace_enabled(TraceLevel::Info) {
                        self.ctx.info(
                            Subsystem::Exec,
                            TraceEvent::ExecDone {
                                image: report.image.clone(),
                                host: report.chosen_host.map(|h| h.0),
                                success: report.success,
                                selection_us: report.selection_time.as_micros(),
                                creation_us: report.creation_time.as_micros(),
                            },
                        );
                    }
                    if !report.success {
                        // The behaviour queued for this image never starts.
                        if let Some(q) = self.pending_behaviors.get_mut(&report.image) {
                            q.pop_front();
                        }
                    } else if let (Some(h), Some(lh)) = (report.chosen_host, report.lh) {
                        // Remote execution: the origin grants the remote
                        // host a lease and remembers the image so it can
                        // re-execute the program if the remote goes silent.
                        if h != self.stations[i].host {
                            self.reexec_images.insert(lh, report.image.clone());
                            let now = self.ctx.now();
                            let louts = self.stations[i].pm.grant_lease(now, lh, h);
                            self.apply_svc_outputs(i, SvcKind::Pm, louts);
                        }
                    }
                    self.exec_reports.push(*report);
                }
            }
        }
        self.apply_kernel_outputs(i, outs.kernel);
    }

    // --- Routing. ---

    fn route_delivery(&mut self, i: usize, msg: MsgIn<ServiceMsg>) {
        let now = self.ctx.now();
        let w = &mut self.stations[i];
        if msg.to == w.pm.pid() {
            let outs = w.pm.handle_request(now, msg, &mut w.kernel);
            self.apply_svc_outputs(i, SvcKind::Pm, outs);
        } else if Some(msg.to) == w.fs.as_ref().map(|f| f.pid()) {
            let fs = w.fs.as_mut().expect("checked");
            let outs = fs.handle_request(now, msg, &mut w.kernel);
            self.apply_svc_outputs(i, SvcKind::Fs, outs);
        } else if msg.to == w.display.pid() {
            let outs = w.display.handle_request(now, msg, &mut w.kernel);
            self.apply_svc_outputs(i, SvcKind::Display, outs);
        } else {
            self.stats.unroutable_deliveries += 1;
            self.metrics.inc(self.ctr_unroutable);
            self.ctx.warn(
                Subsystem::Cluster,
                TraceEvent::Unroutable {
                    lh: msg.to.lh.0,
                    index: msg.to.index,
                },
            );
        }
    }

    fn route_send_done(
        &mut self,
        i: usize,
        pid: ProcessId,
        seq: SendSeq,
        result: Result<vkernel::ReplyIn<ServiceMsg>, vkernel::SendError>,
    ) {
        let now = self.ctx.now();
        let w = &mut self.stations[i];
        if pid == w.pm.pid() {
            let outs = w.pm.handle_send_done(now, seq, result, &mut w.kernel);
            self.apply_svc_outputs(i, SvcKind::Pm, outs);
        } else if pid == w.migrator.pid() {
            let outs = w.migrator.handle_send_done(now, seq, result, &mut w.kernel);
            self.apply_mig_outputs(i, outs);
        } else if pid == w.shell {
            let outs = w.exec.handle_send_done(now, seq, result, &mut w.kernel);
            self.apply_exec_outputs(i, outs);
        } else if let Some(lh) = w
            .programs
            .iter()
            .find(|(_, p)| p.root == pid && p.awaiting == Some(seq))
            .map(|(&lh, _)| lh)
        {
            let ev = match result {
                Ok(r) => ProgEvent::Reply(r.body),
                Err(_) => ProgEvent::SendFailed,
            };
            self.stations[i]
                .programs
                .get_mut(&lh)
                .expect("found above")
                .awaiting = None;
            self.step_program(i, lh, ev);
        }
    }

    fn route_copy_done(
        &mut self,
        i: usize,
        xfer: XferId,
        initiator: ProcessId,
        result: Result<u64, vkernel::SendError>,
    ) {
        let now = self.ctx.now();
        let w = &mut self.stations[i];
        if Some(initiator) == w.fs.as_ref().map(|f| f.pid()) {
            let fs = w.fs.as_mut().expect("checked");
            let outs = fs.handle_copy_done(now, xfer, result, &mut w.kernel);
            self.apply_svc_outputs(i, SvcKind::Fs, outs);
        } else if initiator == w.migrator.pid() {
            let outs = w
                .migrator
                .handle_copy_done(now, xfer, result, &mut w.kernel);
            self.apply_mig_outputs(i, outs);
        } else if initiator == w.pm.pid() {
            let outs = w.pm.handle_copy_done(now, xfer, result, &mut w.kernel);
            self.apply_svc_outputs(i, SvcKind::Pm, outs);
        }
    }

    // --- Service / migration events. ---

    fn on_svc_event(&mut self, i: usize, e: SvcEvent) {
        let now = self.ctx.now();
        match e {
            SvcEvent::ProgramStarted {
                root, lh, image, ..
            } => {
                let behavior = self
                    .pending_behaviors
                    .get_mut(&image)
                    .and_then(|q| q.pop_front());
                let Some(behavior) = behavior else {
                    if self.ctx.trace_enabled(TraceLevel::Warn) {
                        self.ctx.warn(
                            Subsystem::Cluster,
                            TraceEvent::BehaviorMissing {
                                image: image.clone(),
                            },
                        );
                    }
                    return;
                };
                let team = self.stations[i]
                    .kernel
                    .logical_host(lh)
                    .and_then(|l| l.process(root.index))
                    .map(|p| p.team)
                    .expect("started program has a root process");
                let priority = self.stations[i]
                    .pm
                    .program(lh)
                    .map(|p| p.priority)
                    .unwrap_or(Priority::GUEST);
                if self.ctx.trace_enabled(TraceLevel::Info) {
                    self.ctx.info(
                        Subsystem::Cluster,
                        TraceEvent::ProgramStarted {
                            image: image.clone(),
                            lh: lh.0,
                        },
                    );
                }
                self.stations[i].programs.insert(
                    lh,
                    ProgramRuntime {
                        behavior,
                        root,
                        team,
                        priority,
                        remaining_cpu: SimDuration::ZERO,
                        awaiting: None,
                        scheduled: false,
                    },
                );
                self.step_program(i, lh, ProgEvent::Started);
            }
            SvcEvent::ProgramDestroyed { lh } => {
                self.stations[i].programs.remove(&lh);
                self.stations[i].cpu_ready.retain(|&x| x != lh);
                if self.stations[i].cpu_current == Some(lh) {
                    self.stations[i].cpu_current = None;
                    self.cpu_dispatch(i);
                }
            }
            SvcEvent::ProgramResumed { lh } => {
                self.resume_scheduling(i, lh);
            }
            SvcEvent::LogicalHostAdopted { lh } => {
                self.ctx
                    .info(Subsystem::Migration, TraceEvent::Adopted { lh: lh.0 });
                // The behaviour object arrives with the MigEvent::Evicted
                // from the source; nothing to do here.
            }
            SvcEvent::MigrateRequested {
                lh,
                destroy_if_stuck,
                requester,
                seq,
            } => {
                let cfg = self.cfg.migration.clone();
                let w = &mut self.stations[i];
                let meta =
                    w.pm.program(lh)
                        .map(|p| ProgramMeta {
                            image: p.image.clone(),
                            priority: p.priority,
                            origin: p.origin,
                        })
                        .unwrap_or(ProgramMeta {
                            image: "unknown".into(),
                            priority: Priority::GUEST,
                            origin: None,
                        });
                if !w.kernel.is_resident(lh) || w.migrator.migrating(lh) {
                    let pm_pid = w.pm.pid();
                    let outs = w.kernel.reply(
                        now,
                        pm_pid,
                        requester,
                        seq,
                        ServiceMsg::Err(vservices::SvcError::BadRequest),
                        0,
                    );
                    self.apply_kernel_outputs(i, outs);
                    return;
                }
                let reply_to = ReplyTo {
                    from: w.pm.pid(),
                    to: requester,
                    seq,
                };
                let outs = w.migrator.start(
                    now,
                    lh,
                    meta,
                    cfg,
                    Some(reply_to),
                    destroy_if_stuck,
                    &mut w.kernel,
                );
                self.apply_mig_outputs(i, outs);
            }
            SvcEvent::OrphanExterminated { lh } => {
                self.stats.orphans_exterminated += 1;
                if self.ctx.trace_enabled(TraceLevel::Warn) {
                    self.ctx.warn(
                        Subsystem::Services,
                        TraceEvent::OrphanExterminated { lh: lh.0 },
                    );
                }
            }
            SvcEvent::LeaseRebound { lh, to } => {
                self.stats.leases_rebound += 1;
                if self.ctx.trace_enabled(TraceLevel::Info) {
                    self.ctx.info(
                        Subsystem::Services,
                        TraceEvent::LeaseRebound { lh: lh.0, to: to.0 },
                    );
                }
            }
            SvcEvent::ReExecNeeded { lh } => {
                self.re_exec(i, lh);
            }
            SvcEvent::LeasePoint { lh, step, party } => {
                if step == ProtocolStep::LeaseExpiry && self.ctx.trace_enabled(TraceLevel::Warn) {
                    self.ctx.warn(
                        Subsystem::Services,
                        TraceEvent::LeaseExpired {
                            lh: lh.0,
                            party: party.label(),
                        },
                    );
                }
                self.fire_points(lh, step, &[(party, Some(self.stations[i].host.0))]);
            }
        }
    }

    /// Re-executes a leased program from its origin after it was presumed
    /// dead (origin-side lease silence, or extermination notice). Re-exec
    /// gives at-least-once semantics: the origin may briefly race a live
    /// copy, which the lease protocol then exterminates.
    fn re_exec(&mut self, i: usize, lh: LogicalHostId) {
        let Some(image) = self.reexec_images.remove(&lh) else {
            return;
        };
        self.stats.re_execs += 1;
        if self.ctx.trace_enabled(TraceLevel::Warn) {
            self.ctx.warn(
                Subsystem::Services,
                TraceEvent::ReExecuted {
                    lh: lh.0,
                    image: image.clone(),
                },
            );
        }
        self.fire_points(
            lh,
            ProtocolStep::ReExec,
            &[(Party::Origin, Some(self.stations[i].host.0))],
        );
        let Some((profile, priority)) = self.profiles_by_image.get(&image).cloned() else {
            return;
        };
        self.exec(i, profile, ExecTarget::AnyIdle, priority);
    }

    /// Fires one-shot point faults pinned to `(step, party)` crossings.
    /// `parties` lists which protocol parties this crossing represents and
    /// (when known) the station each party runs on, so `PARTY`-relative
    /// fault kinds can be resolved to a concrete station.
    fn fire_points(
        &mut self,
        lh: LogicalHostId,
        step: ProtocolStep,
        parties: &[(Party, Option<u16>)],
    ) {
        if self.point_faults.is_empty() {
            return;
        }
        let n = self.stations.len() as u16;
        let mut fired = Vec::new();
        self.point_faults.retain(|(want_lh, point, kind)| {
            if point.step != step || want_lh.is_some_and(|l| l != lh.0) {
                return true;
            }
            let Some((_, ws)) = parties.iter().find(|(p, _)| *p == point.party) else {
                return true;
            };
            // A party we cannot place (e.g. target not yet chosen) keeps
            // the fault armed for a later crossing of the same step.
            let Some(ws) = ws else {
                return true;
            };
            fired.push((*point, resolve_party(kind.clone(), *ws, n)));
            false
        });
        for (point, kind) in fired {
            if self.ctx.trace_enabled(TraceLevel::Warn) {
                self.ctx.warn(
                    Subsystem::Cluster,
                    TraceEvent::FaultPointHit {
                        step: point.step.label(),
                        party: point.party.label(),
                    },
                );
            }
            self.apply_fault(kind);
        }
    }

    fn on_mig_event(&mut self, i: usize, e: MigEvent) {
        let now = self.ctx.now();
        match e {
            MigEvent::Evicted { lh, to_host } => {
                let j = self.index_of(to_host);
                let (info, fouts) = {
                    let w = &mut self.stations[i];
                    w.pm.forget_program(now, lh, &mut w.kernel)
                };
                self.apply_svc_outputs(i, SvcKind::Pm, fouts);
                // If the evicting station is the program's origin, the
                // program has just *become* remote: grant a lease to the
                // destination and remember the image for possible re-exec.
                // (A guest's existing lease travels in InstallState.origin;
                // the new holder heartbeats and the origin rebinds.)
                if let Some(info) = info {
                    if info.origin == Some(self.stations[i].host) {
                        self.reexec_images.insert(lh, info.image.clone());
                        let louts = self.stations[i].pm.grant_lease(now, lh, to_host);
                        self.apply_svc_outputs(i, SvcKind::Pm, louts);
                    }
                }
                self.stations[i].cpu_ready.retain(|&x| x != lh);
                if self.stations[i].cpu_current == Some(lh) {
                    self.stations[i].cpu_current = None;
                }
                if let Some(prt) = self.stations[i].programs.remove(&lh) {
                    self.ctx.info(
                        Subsystem::Migration,
                        TraceEvent::Rebind {
                            lh: lh.0,
                            from: self.stations[i].host.0,
                            to: self.stations[j].host.0,
                        },
                    );
                    let mut prt = prt;
                    prt.scheduled = false;
                    let resume_cpu = prt.remaining_cpu > SimDuration::ZERO;
                    self.stations[j].programs.insert(lh, prt);
                    if resume_cpu {
                        self.cpu_make_ready(j, lh);
                    }
                }
                self.cpu_dispatch(i);
            }
            MigEvent::Done(report) => {
                if self.ctx.trace_enabled(TraceLevel::Info) {
                    self.ctx.info(
                        Subsystem::Migration,
                        TraceEvent::MigrationDone {
                            image: report.image.clone(),
                            lh: report.lh.0,
                            success: report.success,
                            iterations: report.iterations.len() as u32,
                            residual_kb: report.residual_bytes / 1024,
                            freeze_us: report.freeze_time.as_micros(),
                        },
                    );
                }
                self.note_reclaim_progress(i);
                self.migration_reports.push(*report);
            }
            MigEvent::UnfrozeInPlace { lh } => {
                self.resume_scheduling(i, lh);
            }
            MigEvent::Phase { lh, phase } => {
                // Fire any fault pinned to this protocol step (one-shot,
                // first matching migration wins).
                let mut fired = Vec::new();
                self.phase_faults.retain(|(want_lh, want_phase, kind)| {
                    let hit = *want_phase == phase && want_lh.is_none_or(|l| l == lh.0);
                    if hit {
                        fired.push(kind.clone());
                    }
                    !hit
                });
                for kind in fired {
                    self.apply_fault(kind);
                }
            }
            MigEvent::Point { lh, step, target } => {
                let origin = self.stations[i]
                    .pm
                    .program(lh)
                    .and_then(|p| p.origin)
                    .map(|h| h.0);
                self.fire_points(
                    lh,
                    step,
                    &[
                        (Party::Source, Some(self.stations[i].host.0)),
                        (Party::Target, target.map(|h| h.0)),
                        (Party::Origin, origin),
                    ],
                );
            }
            MigEvent::Destroyed { lh } => {
                let (info, fouts) = {
                    let w = &mut self.stations[i];
                    w.pm.forget_program(now, lh, &mut w.kernel)
                };
                self.apply_svc_outputs(i, SvcKind::Pm, fouts);
                // A deliberate destroy releases the lease back to the
                // origin so it does not later presume the program dead.
                if let Some(o) = info.and_then(|p| p.origin) {
                    let louts = {
                        let w = &mut self.stations[i];
                        w.pm.release_lease_to(now, o, lh, &mut w.kernel)
                    };
                    self.apply_svc_outputs(i, SvcKind::Pm, louts);
                }
                self.reexec_images.remove(&lh);
                self.stations[i].programs.remove(&lh);
                self.stations[i].cpu_ready.retain(|&x| x != lh);
                if self.stations[i].cpu_current == Some(lh) {
                    self.stations[i].cpu_current = None;
                    self.cpu_dispatch(i);
                }
            }
        }
    }

    /// Re-queues a program whose logical host was unfrozen in place
    /// (resume after suspension, or an aborted migration).
    fn resume_scheduling(&mut self, i: usize, lh: LogicalHostId) {
        let needs_cpu = self.stations[i]
            .programs
            .get(&lh)
            .map(|p| p.remaining_cpu > SimDuration::ZERO && !p.scheduled)
            .unwrap_or(false);
        if needs_cpu {
            self.cpu_make_ready(i, lh);
        }
    }

    // --- Program execution. ---

    fn step_program(&mut self, i: usize, lh: LogicalHostId, ev: ProgEvent) {
        let now = self.ctx.now();
        let action = {
            let w = &mut self.stations[i];
            let Some(prt) = w.programs.get_mut(&lh) else {
                return;
            };
            prt.behavior.next(now, ev, &mut self.rng)
        };
        self.perform_action(i, lh, action);
    }

    fn perform_action(&mut self, i: usize, lh: LogicalHostId, action: ProgAction) {
        let now = self.ctx.now();
        match action {
            ProgAction::Compute(d) => {
                let prt = self.stations[i]
                    .programs
                    .get_mut(&lh)
                    .expect("acting program exists");
                prt.remaining_cpu = d;
                self.cpu_make_ready(i, lh);
            }
            ProgAction::Sleep(d) => {
                self.ctx.schedule_after(d, Event::SleepDone { lh });
            }
            ProgAction::Send {
                to,
                body,
                data_bytes,
                register_child,
            } => {
                if let Some(profile) = register_child {
                    // A subprogram is being created; queue its behaviour
                    // (it inherits the parent's environment, §2.1).
                    let env = self.stations[i]
                        .programs
                        .get(&lh)
                        .expect("acting program")
                        .behavior
                        .env()
                        .clone();
                    self.add_image(&profile);
                    self.pending_behaviors
                        .entry(profile.name.clone())
                        .or_default()
                        .push_back(WorkloadProgram::new(*profile, env));
                }
                let (outs, seq) = {
                    let w = &mut self.stations[i];
                    let root = w.programs.get(&lh).expect("acting program").root;
                    let (seq, outs) = w.kernel.send_with_seq(now, root, to, body, data_bytes);
                    (outs, seq)
                };
                self.stations[i]
                    .programs
                    .get_mut(&lh)
                    .expect("acting program")
                    .awaiting = Some(seq);
                self.apply_kernel_outputs(i, outs);
            }
            ProgAction::Exit => {
                self.stats.programs_finished += 1;
                self.metrics.inc(self.ctr_finished);
                // The finished program is destroyed via "the program
                // manager of whatever workstation hosts lh" — the
                // well-known local group of §2.1, which keeps working
                // across migrations.
                let outs = {
                    let w = &mut self.stations[i];
                    let shell = w.shell;
                    let dest = Destination::Group(GroupId::program_manager_of(lh));
                    w.kernel
                        .send(now, shell, dest, ServiceMsg::DestroyProgram { lh }, 0)
                };
                self.apply_kernel_outputs(i, outs);
            }
        }
    }

    fn on_sleep_done(&mut self, lh: LogicalHostId) {
        if let Some(i) = self.behavior_station(lh) {
            // A frozen program's sleep completion waits for the unfreeze
            // (execution is suspended); model: re-queue the event shortly.
            // Likewise while the hosting station is powered off.
            let frozen = self.stations[i]
                .kernel
                .logical_host(lh)
                .map(|l| l.is_frozen())
                .unwrap_or(false);
            if frozen || self.stations[i].down {
                self.ctx
                    .schedule_after(SimDuration::from_millis(10), Event::SleepDone { lh });
                return;
            }
            self.step_program(i, lh, ProgEvent::SleepDone);
        }
    }

    // --- CPU scheduling (priority, round-robin within a level). ---

    fn cpu_make_ready(&mut self, i: usize, lh: LogicalHostId) {
        let w = &mut self.stations[i];
        let Some(prt) = w.programs.get_mut(&lh) else {
            return;
        };
        if prt.scheduled || prt.remaining_cpu.is_zero() {
            return;
        }
        prt.scheduled = true;
        w.cpu_ready.push_back(lh);
        self.cpu_dispatch(i);
    }

    fn cpu_dispatch(&mut self, i: usize) {
        let now = self.ctx.now();
        let w = &mut self.stations[i];
        if w.cpu_current.is_some() || w.cpu_ready.is_empty() {
            return;
        }
        // Pick the highest-priority ready program (lowest Priority value),
        // FIFO within a level — "priority scheduling for locally invoked
        // programs" (§2).
        let best = w
            .cpu_ready
            .iter()
            .enumerate()
            .min_by_key(|(pos, lh)| {
                let pr = w
                    .programs
                    .get(lh)
                    .map(|p| p.priority)
                    .unwrap_or(Priority::GUEST);
                (pr, *pos)
            })
            .map(|(pos, _)| pos);
        let Some(pos) = best else { return };
        let lh = w.cpu_ready.remove(pos).expect("position valid");
        let Some(prt) = w.programs.get_mut(&lh) else {
            return;
        };
        // Frozen programs do not execute.
        let frozen = w
            .kernel
            .logical_host(lh)
            .map(|l| l.is_frozen())
            .unwrap_or(true);
        if frozen {
            prt.scheduled = false;
            return;
        }
        let slice = prt.remaining_cpu.min(CPU_QUANTUM);
        w.cpu_current = Some(lh);
        let host = w.host;
        let _ = now;
        self.ctx.schedule_after(
            slice + CONTEXT_SWITCH,
            Event::QuantumEnd { host, lh, slice },
        );
    }

    fn on_quantum_end(&mut self, host: HostAddr, lh: LogicalHostId, slice: SimDuration) {
        let i = self.index_of(host);
        if self.stations[i].down {
            return;
        }
        if self.stations[i].cpu_current != Some(lh) {
            // The program migrated or was destroyed mid-quantum.
            self.cpu_dispatch(i);
            return;
        }
        self.stations[i].cpu_current = None;
        let frozen = self.stations[i]
            .kernel
            .logical_host(lh)
            .map(|l| l.is_frozen())
            .unwrap_or(true);
        let mut cpu_done = false;
        if let Some(prt) = self.stations[i].programs.get_mut(&lh) {
            prt.scheduled = false;
            if !frozen {
                // Record the slice as a retroactive "quantum" span: the run
                // started a slice ago, so the open record is back-dated.
                // `sort_by_time` puts it in order before anything reads it.
                let now = self.ctx.now();
                let sid = self.spans.next();
                sid.open(
                    self.ctx.trace_mut(),
                    TraceLevel::Detail,
                    SimTime::from_micros(now.as_micros().saturating_sub(slice.as_micros())),
                    Subsystem::Cluster,
                    SpanContext::NONE,
                    "quantum",
                    host.0,
                );
                sid.close(
                    self.ctx.trace_mut(),
                    TraceLevel::Detail,
                    now,
                    Subsystem::Cluster,
                );
                // Charge the slice: the behaviour dirties pages.
                let w = &mut self.stations[i];
                let prt = w.programs.get_mut(&lh).expect("checked");
                if prt.priority <= Priority::LOCAL {
                    w.cpu_local += slice;
                    self.metrics.inc(self.ctr_quanta_local);
                } else {
                    w.cpu_guest += slice;
                    self.metrics.inc(self.ctr_quanta_guest);
                }
                if let Some(space) = w
                    .kernel
                    .logical_host_mut(lh)
                    .and_then(|l| l.space_mut(prt.team))
                {
                    prt.behavior.on_cpu(slice, space, &mut self.rng);
                }
                prt.remaining_cpu = prt.remaining_cpu.saturating_sub(slice);
                if prt.remaining_cpu.is_zero() {
                    cpu_done = true;
                } else {
                    prt.scheduled = true;
                    w.cpu_ready.push_back(lh);
                }
            }
        }
        if cpu_done {
            self.step_program(i, lh, ProgEvent::CpuDone);
        }
        self.cpu_dispatch(i);
    }

    // --- Owners. ---

    fn on_user_transition(&mut self, host: HostAddr, held: SimDuration) {
        let i = self.index_of(host);
        let now = self.ctx.now();
        let Some(user) = self.stations[i].user.as_mut() else {
            return;
        };
        let new_state = user.transition(held);
        let next_held = user.holding_time(&mut self.rng);
        let active = new_state == OwnerState::Active;
        self.stations[i].pm.set_owner_active(active);
        self.ctx.schedule_after(
            next_held,
            Event::UserTransition {
                host,
                held: next_held,
            },
        );
        if active && self.cfg.evict_on_owner_return {
            self.reclaim_pending.insert(host, now);
            self.evict_guests(i);
            self.note_reclaim_progress(i);
        }
    }

    fn evict_guests(&mut self, i: usize) {
        let now = self.ctx.now();
        let guests: Vec<LogicalHostId> = self.stations[i]
            .pm
            .programs()
            .iter()
            .filter(|(_, p)| p.remote_origin)
            .map(|(&lh, _)| lh)
            .collect();
        for lh in guests {
            if self.stations[i].migrator.migrating(lh) {
                continue;
            }
            self.stats.owner_evictions += 1;
            self.metrics.inc(self.ctr_evictions);
            let cfg = self.cfg.migration.clone();
            let w = &mut self.stations[i];
            let meta =
                w.pm.program(lh)
                    .map(|p| ProgramMeta {
                        image: p.image.clone(),
                        priority: p.priority,
                        origin: p.origin,
                    })
                    .expect("guest is registered");
            let outs = w
                .migrator
                .start(now, lh, meta, cfg, None, true, &mut w.kernel);
            self.apply_mig_outputs(i, outs);
        }
    }

    fn note_reclaim_progress(&mut self, i: usize) {
        let host = self.stations[i].host;
        let Some(&since) = self.reclaim_pending.get(&host) else {
            return;
        };
        let guests_left = self.stations[i]
            .pm
            .programs()
            .values()
            .filter(|p| p.remote_origin)
            .count();
        if guests_left == 0 {
            let now = self.ctx.now();
            self.reclaim_pending.remove(&host);
            self.reclaim_times.push(now.since(since));
        }
    }

    // --- Commands. ---

    fn on_command(&mut self, cmd: Command) {
        match cmd {
            Command::Exec {
                ws,
                profile,
                target,
                priority,
            } => self.exec(ws, profile, target, priority),
            Command::Migrate {
                ws,
                lh,
                destroy_if_stuck,
            } => {
                let lh = lh.or_else(|| {
                    self.stations[ws]
                        .pm
                        .programs()
                        .iter()
                        .find(|(_, p)| p.remote_origin)
                        .map(|(&lh, _)| lh)
                });
                if let Some(lh) = lh {
                    self.migrateprog(ws, lh, destroy_if_stuck);
                }
            }
            Command::Crash { ws } => {
                let host = self.stations[ws].host;
                self.net.set_up(host, false);
                self.stations[ws].down = true;
            }
            Command::Reboot { ws } => {
                let host = self.stations[ws].host;
                self.net.set_up(host, true);
                self.stations[ws].down = false;
                // A reboot loses volatile state — most importantly any
                // Demos/MP forwarding addresses (§5).
                self.stations[ws].kernel.clear_forwarding();
                // Every timer callback pending at crash time was consumed
                // while the station was down; re-arm the kernel's
                // retransmission/retention timers, fail its in-flight bulk
                // transfers, and re-arm the program manager's watchdogs.
                let now = self.ctx.now();
                let kouts = self.stations[ws].kernel.reboot_recover(now);
                self.apply_kernel_outputs(ws, kouts);
                let souts = self.stations[ws].pm.reboot_recover();
                self.apply_svc_outputs(ws, SvcKind::Pm, souts);
                // The CPU scheduler's quantum events died with the power:
                // rebuild the ready queue from programs that still owe CPU.
                self.stations[ws].cpu_current = None;
                self.stations[ws].cpu_ready.clear();
                let mut runnable: Vec<LogicalHostId> = Vec::new();
                for (&lh, prt) in self.stations[ws].programs.iter_mut() {
                    prt.scheduled = false;
                    if prt.remaining_cpu > SimDuration::ZERO {
                        runnable.push(lh);
                    }
                }
                runnable.sort_by_key(|l| l.0);
                for lh in runnable {
                    self.cpu_make_ready(ws, lh);
                }
            }
            Command::SetOwnerActive { ws, active } => {
                self.stations[ws].pm.set_owner_active(active);
                if active && self.cfg.evict_on_owner_return {
                    let host = self.stations[ws].host;
                    let now = self.ctx.now();
                    self.reclaim_pending.insert(host, now);
                    self.evict_guests(ws);
                    self.note_reclaim_progress(ws);
                }
            }
        }
    }

    /// Convenience: register a program already known to a PM (tests).
    pub fn register_program_info(&mut self, ws: usize, lh: LogicalHostId, info: ProgramInfo) {
        self.stations[ws].pm.register_program(lh, info);
    }

    /// Point-triggered faults still waiting for their protocol-step
    /// crossing. Matrix tests assert this reaches zero — i.e. every
    /// scheduled fault point was actually crossed and fired.
    pub fn pending_point_faults(&self) -> usize {
        self.point_faults.len()
    }
}

/// Replaces the [`PARTY`] placeholder in a fault kind with the concrete
/// station `ws` the matched protocol party runs on. A `Partition` with an
/// empty `b` side isolates the party from everyone else.
fn resolve_party(kind: FaultKind, ws: u16, stations: u16) -> FaultKind {
    let fix = |s: u16| if s == PARTY { ws } else { s };
    match kind {
        FaultKind::Crash {
            ws: w,
            reboot_after,
        } => FaultKind::Crash {
            ws: fix(w),
            reboot_after,
        },
        FaultKind::Partition {
            a,
            b,
            symmetric,
            heal_after,
        } => {
            let a: Vec<u16> = a.into_iter().map(fix).collect();
            let b: Vec<u16> = if b.is_empty() {
                (0..stations).filter(|s| !a.contains(s)).collect()
            } else {
                b.into_iter().map(fix).collect()
            };
            FaultKind::Partition {
                a,
                b,
                symmetric,
                heal_after,
            }
        }
        FaultKind::LatencySpike {
            from,
            to,
            extra,
            duration,
        } => FaultKind::LatencySpike {
            from: fix(from),
            to: fix(to),
            extra,
            duration,
        },
        FaultKind::ServiceRestart { ws: w } => FaultKind::ServiceRestart { ws: fix(w) },
        k @ FaultKind::Corrupt { .. } => k,
    }
}

fn is_bulk(p: &Packet<ServiceMsg>) -> bool {
    matches!(
        p,
        Packet::BulkData { .. }
            | Packet::BulkAck { .. }
            | Packet::BulkPull { .. }
            | Packet::BulkPullNak { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_lays_out_stations() {
        let c = Cluster::new(ClusterConfig {
            workstations: 3,
            loss: LossModel::None,
            ..ClusterConfig::default()
        });
        assert_eq!(c.stations.len(), 4, "file server + 3 workstations");
        assert_eq!(c.stations[0].name, "fileserver");
        assert_eq!(c.stations[1].name, "ws1");
        assert_eq!(c.stations[3].name, "ws3");
        assert!(c.stations[0].fs.is_some());
        assert!(c.stations[1].fs.is_none());
        // System logical hosts are 1 + station index.
        assert_eq!(c.stations[2].system_lh(), LogicalHostId(3));
        // The paging store lives on the file-server machine.
        assert_eq!(c.locate(PAGING_LH), Some(c.stations[0].host));
        // index_of inverts host addresses.
        for (i, w) in c.stations.iter().enumerate() {
            assert_eq!(c.index_of(w.host), i);
        }
    }

    #[test]
    fn cpu_utilization_accounts_priorities() {
        let mut w = Cluster::new(ClusterConfig {
            workstations: 1,
            loss: LossModel::None,
            ..ClusterConfig::default()
        });
        let ws = &mut w.stations[1];
        ws.cpu_local = SimDuration::from_secs(3);
        ws.cpu_guest = SimDuration::from_secs(1);
        let util = ws.cpu_utilization(SimDuration::from_secs(10));
        assert!((util - 0.4).abs() < 1e-9);
        assert_eq!(ws.cpu_utilization(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn pm_group_membership_is_wired() {
        let c = Cluster::new(ClusterConfig {
            workstations: 2,
            loss: LossModel::None,
            ..ClusterConfig::default()
        });
        // All three PMs (fileserver included) joined the multicast group.
        assert_eq!(c.net.members(PM_MCAST).len(), 3);
    }

    #[test]
    fn bulk_packets_are_classified() {
        let p: Packet<ServiceMsg> = Packet::BulkAck {
            xfer: vkernel::XferId(1),
            unit: 0,
            refused: false,
        };
        assert!(is_bulk(&p));
        let p: Packet<ServiceMsg> = Packet::NewBinding {
            lh: LogicalHostId(1),
            host: HostAddr(0),
        };
        assert!(!is_bulk(&p));
    }
}
