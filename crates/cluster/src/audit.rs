//! Cluster-wide invariant auditing.
//!
//! Fault injection is only as convincing as the checks run afterwards.
//! [`Cluster::audit`] sweeps every station and verifies the global
//! invariants the paper's recovery arguments rest on: programs are
//! conserved (none lost, none duplicated), temporary logical hosts left
//! by half-done migrations are reclaimed by the watchdogs, no frozen
//! logical host outlives its migration, kernel transaction tables drain,
//! and binding caches never name non-existent stations. Violations are
//! typed ([`AuditViolation`]), traced as `TraceEvent::AuditViolation`,
//! and counted in the cluster metrics.
//!
//! Checkpoint audits (`final_check: false`) run only the checks that hold
//! at any event boundary; end-of-run audits additionally assert the
//! quiescence invariants (drained tables, no leftovers), which only hold
//! once the event queue has emptied.

use std::collections::BTreeSet;

use vkernel::LogicalHostId;
use vnet::HostAddr;
use vservices::TEMP_LH_FLOOR;
use vsim::SimTime;

use crate::runtime::{Cluster, PAGING_LH};

/// One invariant violation found by the cluster auditor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditViolation {
    /// A program known to a program manager or behaviour table is
    /// resident on no station (crashed stations excluded: their state
    /// comes back with the power).
    ProgramLost {
        /// The missing program's logical host.
        lh: LogicalHostId,
    },
    /// A logical host is resident on more than one station with no active
    /// migration to explain the second copy.
    ProgramDuplicated {
        /// The duplicated logical host.
        lh: LogicalHostId,
    },
    /// A temporary migration logical host survived on an up station with
    /// no active migration owning it — the reclaim watchdog failed.
    OrphanTempLh {
        /// Station index holding the orphan.
        ws: usize,
        /// The orphaned temporary logical host.
        lh: LogicalHostId,
    },
    /// A frozen logical host outlived its migration (and is not a
    /// deliberate suspension).
    FrozenWithoutMigration {
        /// Station index holding the zombie.
        ws: usize,
        /// The frozen logical host.
        lh: LogicalHostId,
    },
    /// A kernel's transaction tables failed to drain at end of run:
    /// outstanding Sends or bulk transfers with nothing left to complete
    /// them.
    UndrainedTransactions {
        /// Station index.
        ws: usize,
        /// Leftover outstanding Sends plus active bulk transfers.
        count: usize,
    },
    /// A binding-cache entry names a station that does not exist.
    StaleBinding {
        /// Station index holding the entry.
        ws: usize,
        /// The cached logical host.
        lh: LogicalHostId,
        /// The bogus physical address.
        host: HostAddr,
    },
    /// A logical host is *running* (resident and unfrozen) on more than
    /// one up station at once. Unlike [`AuditViolation::ProgramDuplicated`]
    /// this has no mid-migration exemption: a correct handoff keeps the
    /// second copy frozen until the first is gone.
    DuplicateLiveCopy {
        /// The doubly-live logical host.
        lh: LogicalHostId,
    },
    /// A held lease ran out more than the grace period ago but the
    /// program is still alive on the holder — orphan extermination
    /// failed or was disabled.
    LeaseExpiredButAlive {
        /// Station index still hosting the orphan.
        ws: usize,
        /// The overdue program.
        lh: LogicalHostId,
    },
    /// A remote-origin program is alive on an up station with no lease
    /// backing it at all — an orphan that escaped the lease machinery
    /// entirely, past any grace window.
    OrphanPastGrace {
        /// Station index hosting the unleased program.
        ws: usize,
        /// The unleased program.
        lh: LogicalHostId,
    },
}

impl AuditViolation {
    /// A short static label for traces and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            AuditViolation::ProgramLost { .. } => "program-lost",
            AuditViolation::ProgramDuplicated { .. } => "program-duplicated",
            AuditViolation::OrphanTempLh { .. } => "orphan-temp-lh",
            AuditViolation::FrozenWithoutMigration { .. } => "frozen-without-migration",
            AuditViolation::UndrainedTransactions { .. } => "undrained-transactions",
            AuditViolation::StaleBinding { .. } => "stale-binding",
            AuditViolation::DuplicateLiveCopy { .. } => "duplicate-live-copy",
            AuditViolation::LeaseExpiredButAlive { .. } => "lease-expired-but-alive",
            AuditViolation::OrphanPastGrace { .. } => "orphan-past-grace",
        }
    }

    /// The logical host involved, where one is.
    pub fn lh(&self) -> Option<LogicalHostId> {
        match self {
            AuditViolation::ProgramLost { lh }
            | AuditViolation::ProgramDuplicated { lh }
            | AuditViolation::OrphanTempLh { lh, .. }
            | AuditViolation::FrozenWithoutMigration { lh, .. }
            | AuditViolation::StaleBinding { lh, .. }
            | AuditViolation::DuplicateLiveCopy { lh }
            | AuditViolation::LeaseExpiredButAlive { lh, .. }
            | AuditViolation::OrphanPastGrace { lh, .. } => Some(*lh),
            AuditViolation::UndrainedTransactions { .. } => None,
        }
    }
}

impl core::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AuditViolation::ProgramLost { lh } => {
                write!(f, "program lh{} resident nowhere", lh.0)
            }
            AuditViolation::ProgramDuplicated { lh } => {
                write!(f, "program lh{} resident more than once", lh.0)
            }
            AuditViolation::OrphanTempLh { ws, lh } => {
                write!(f, "orphan temp lh{} on station {ws}", lh.0)
            }
            AuditViolation::FrozenWithoutMigration { ws, lh } => {
                write!(f, "lh{} frozen on station {ws} with no migration", lh.0)
            }
            AuditViolation::UndrainedTransactions { ws, count } => {
                write!(f, "{count} undrained transactions on station {ws}")
            }
            AuditViolation::StaleBinding { ws, lh, host } => {
                write!(
                    f,
                    "station {ws} caches lh{} -> invalid host{}",
                    lh.0, host.0
                )
            }
            AuditViolation::DuplicateLiveCopy { lh } => {
                write!(
                    f,
                    "program lh{} running live on more than one station",
                    lh.0
                )
            }
            AuditViolation::LeaseExpiredButAlive { ws, lh } => {
                write!(f, "lh{} on station {ws} outlived its expired lease", lh.0)
            }
            AuditViolation::OrphanPastGrace { ws, lh } => {
                write!(f, "remote-origin lh{} on station {ws} holds no lease", lh.0)
            }
        }
    }
}

/// The result of one audit pass.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// When the audit ran.
    pub at: SimTime,
    /// True for an end-of-run audit (quiescence checks included).
    pub final_check: bool,
    /// Everything found, in detection order.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl core::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_clean() {
            write!(f, "audit@{}: clean", self.at)
        } else {
            write!(
                f,
                "audit@{}: {} violation(s)",
                self.at,
                self.violations.len()
            )?;
            for v in &self.violations {
                write!(f, "\n  - {v}")?;
            }
            Ok(())
        }
    }
}

impl Cluster {
    /// Sweeps the whole cluster for invariant violations.
    ///
    /// `final_check` additionally runs the quiescence checks (orphaned
    /// temporaries, frozen zombies, undrained transaction tables) that
    /// only hold once the event queue has emptied. Violations are traced,
    /// counted, and appended to [`Cluster::audit_reports`].
    pub fn audit(&mut self, final_check: bool) -> AuditReport {
        let now = self.ctx.now();
        let mut violations = Vec::new();

        // Migrations in flight on up stations: their source logical hosts
        // legitimately exist twice (source + renamed target), and their
        // temporaries are legitimate residents.
        let mut active_lhs: BTreeSet<LogicalHostId> = BTreeSet::new();
        let mut active_temps: BTreeSet<LogicalHostId> = BTreeSet::new();
        for w in self.stations.iter().filter(|w| !w.down) {
            for (lh, temp) in w.migrator.active_jobs() {
                active_lhs.insert(lh);
                active_temps.insert(temp);
            }
        }

        // Conservation: every program any up-station manager or behaviour
        // table knows must be resident somewhere, and at most once unless
        // a migration is mid-copy.
        let mut known: BTreeSet<LogicalHostId> = BTreeSet::new();
        for w in self.stations.iter().filter(|w| !w.down) {
            known.extend(w.pm.programs().keys().copied());
            known.extend(w.programs.keys().copied());
        }
        for &lh in &known {
            let up_copies = self
                .stations
                .iter()
                .filter(|w| !w.down && w.kernel.is_resident(lh))
                .count();
            let down_copy = self
                .stations
                .iter()
                .any(|w| w.down && w.kernel.is_resident(lh));
            if up_copies == 0 && !down_copy {
                violations.push(AuditViolation::ProgramLost { lh });
            }
            let copies = up_copies + usize::from(down_copy);
            if copies > 1 && !(active_lhs.contains(&lh) && copies == 2) {
                violations.push(AuditViolation::ProgramDuplicated { lh });
            }
            // A correct handoff never lets two *unfrozen* copies coexist,
            // even mid-migration: the target stays frozen until the source
            // copy is deleted.
            let live_copies = self
                .stations
                .iter()
                .filter(|w| {
                    !w.down
                        && w.kernel.is_resident(lh)
                        && !w
                            .kernel
                            .logical_host(lh)
                            .map(|l| l.is_frozen())
                            .unwrap_or(false)
                })
                .count();
            if live_copies > 1 {
                violations.push(AuditViolation::DuplicateLiveCopy { lh });
            }
        }

        if final_check {
            for (i, w) in self.stations.iter().enumerate().filter(|(_, w)| !w.down) {
                for lh in w.kernel.resident_lhs() {
                    if lh.0 >= TEMP_LH_FLOOR && !active_temps.contains(&lh) {
                        violations.push(AuditViolation::OrphanTempLh { ws: i, lh });
                        continue;
                    }
                    let frozen = w
                        .kernel
                        .logical_host(lh)
                        .map(|l| l.is_frozen())
                        .unwrap_or(false);
                    // Only program logical hosts can be migration zombies:
                    // system hosts are 1 + station index, the paging store
                    // is fixed, and temporaries were handled above.
                    if frozen
                        && lh.0 < TEMP_LH_FLOOR
                        && lh != PAGING_LH
                        && lh.0 >= 10_000
                        && !active_lhs.contains(&lh)
                        && !w.pm.is_suspended(lh)
                    {
                        violations.push(AuditViolation::FrozenWithoutMigration { ws: i, lh });
                    }
                }
                let undrained = w.kernel.outstanding_sends().len() + w.kernel.active_transfers();
                if undrained > 0 {
                    violations.push(AuditViolation::UndrainedTransactions {
                        ws: i,
                        count: undrained,
                    });
                }
                // Lease liveness: at quiescence no program may outlive an
                // expired lease, and every remote-origin program must hold
                // one (the machinery that would exterminate it otherwise).
                if w.pm.lease_config().enabled {
                    for lh in w.pm.expired_leases(now) {
                        if w.kernel.is_resident(lh) {
                            violations.push(AuditViolation::LeaseExpiredButAlive { ws: i, lh });
                        }
                    }
                    let held: BTreeSet<LogicalHostId> =
                        w.pm.held_leases().into_iter().map(|(lh, _)| lh).collect();
                    for (&lh, info) in w.pm.programs() {
                        if info.origin.is_some_and(|o| o != w.host)
                            && !held.contains(&lh)
                            && w.kernel.is_resident(lh)
                        {
                            violations.push(AuditViolation::OrphanPastGrace { ws: i, lh });
                        }
                    }
                }
            }
        }

        // Binding caches must never name stations that do not exist;
        // entries pointing at the wrong (valid) station are legal — the
        // rebind protocol corrects them on the next Send.
        let station_count = self.stations.len();
        for (i, w) in self.stations.iter().enumerate().filter(|(_, w)| !w.down) {
            for (lh, host) in w.kernel.binding_cache().entries() {
                if host.0 as usize >= station_count {
                    violations.push(AuditViolation::StaleBinding { ws: i, lh, host });
                }
            }
        }

        for v in &violations {
            self.note_violation(v);
        }
        let report = AuditReport {
            at: now,
            final_check,
            violations,
        };
        self.audit_reports.push(report.clone());
        report
    }
}
