//! `vcluster` — the whole-cluster simulation runtime.
//!
//! Wires the substrates together into the paper's world: a 10 Mbit
//! Ethernet, a diskless file-server machine, N workstations each running a
//! V kernel, program manager, display server, shell and migration engine,
//! plus the workload programs and owner-activity models. The [`Cluster`]
//! owns the single event loop; everything else stays a sans-IO state
//! machine.

mod audit;
mod runtime;
mod script;

pub use audit::{AuditReport, AuditViolation};
pub use runtime::{
    Cluster, ClusterConfig, ClusterStats, Command, Event, ProgramRuntime, SvcKind, Workstation,
    PAGING_LH,
};
pub use script::{ExecStep, MigrateStep, ScenarioBuilder};
pub use vsim::{FaultEvent, FaultKind, FaultPlan, FaultTrigger, MigrationPhase};
