//! Fluent scenario scripting.
//!
//! [`Cluster::at`] takes a raw [`Command`]; this module layers a builder
//! on top so experiment scripts read like the shell sessions they model:
//!
//! ```
//! use vcluster::{Cluster, ClusterConfig};
//! use vcore::ExecTarget;
//! use vsim::SimDuration;
//! use vworkload::profiles;
//!
//! let mut c = Cluster::new(ClusterConfig::default());
//! let row = profiles::row("make").expect("row");
//! c.script()
//!     .at_ms(500)
//!     .exec(1)
//!     .profile(profiles::steady_profile(row))
//!     .target(ExecTarget::AnyIdle)
//!     .guest()
//!     .at_ms(2_000)
//!     .crash(2);
//! c.run_for(SimDuration::from_secs(3));
//! ```
//!
//! Every step ultimately schedules a plain [`Command`], so scripted and
//! hand-scheduled scenarios stay interchangeable.

use vcore::ExecTarget;
use vkernel::{LogicalHostId, Priority};
use vsim::SimTime;
use vworkload::ProgramProfile;

use crate::runtime::{Cluster, Command};

/// Entry point of the fluent scripting API; see the module docs.
///
/// The builder carries a cursor time (initially the cluster's current
/// time) that [`ScenarioBuilder::at_ms`]/[`ScenarioBuilder::after_ms`]
/// move; each terminal step schedules one [`Command`] at the cursor.
pub struct ScenarioBuilder<'a> {
    cluster: &'a mut Cluster,
    at: SimTime,
}

impl Cluster {
    /// Starts a scripted scenario; commands default to "now".
    pub fn script(&mut self) -> ScenarioBuilder<'_> {
        let at = self.now();
        ScenarioBuilder { cluster: self, at }
    }
}

impl<'a> ScenarioBuilder<'a> {
    /// Moves the cursor to an absolute time in milliseconds.
    pub fn at_ms(mut self, ms: u64) -> Self {
        self.at = SimTime::from_micros(ms * 1_000);
        self
    }

    /// Moves the cursor to an absolute [`SimTime`].
    pub fn at(mut self, t: SimTime) -> Self {
        self.at = t;
        self
    }

    /// Advances the cursor by `ms` milliseconds.
    pub fn after_ms(mut self, ms: u64) -> Self {
        self.at = SimTime::from_micros(self.at.as_micros() + ms * 1_000);
        self
    }

    /// Begins an `exec` step from workstation `ws`'s shell; finish it
    /// with [`ExecStep::guest`] or [`ExecStep::local`].
    pub fn exec(self, ws: usize) -> ExecStep<'a> {
        ExecStep {
            b: self,
            ws,
            profile: None,
            target: ExecTarget::AnyIdle,
        }
    }

    /// Begins a `migrateprog` step on workstation `ws`; finish it with
    /// [`MigrateStep::go`].
    pub fn migrate(self, ws: usize) -> MigrateStep<'a> {
        MigrateStep {
            b: self,
            ws,
            lh: None,
            destroy_if_stuck: false,
        }
    }

    /// Schedules a crash of station `ws` at the cursor.
    pub fn crash(self, ws: usize) -> Self {
        self.push(Command::Crash { ws })
    }

    /// Schedules a reboot of station `ws` at the cursor.
    pub fn reboot(self, ws: usize) -> Self {
        self.push(Command::Reboot { ws })
    }

    /// Schedules an owner-activity change at the cursor.
    pub fn owner_active(self, ws: usize, active: bool) -> Self {
        self.push(Command::SetOwnerActive { ws, active })
    }

    fn push(self, cmd: Command) -> Self {
        let t = self.at;
        self.cluster.at(t, cmd);
        self
    }
}

/// An `exec` step under construction.
pub struct ExecStep<'a> {
    b: ScenarioBuilder<'a>,
    ws: usize,
    profile: Option<ProgramProfile>,
    target: ExecTarget,
}

impl<'a> ExecStep<'a> {
    /// Sets the program to run (required).
    pub fn profile(mut self, p: ProgramProfile) -> Self {
        self.profile = Some(p);
        self
    }

    /// Sets the `@`-target (default [`ExecTarget::AnyIdle`]).
    pub fn target(mut self, t: ExecTarget) -> Self {
        self.target = t;
        self
    }

    /// Shorthand for targeting a named host (`@ name`).
    pub fn on(mut self, name: &str) -> Self {
        self.target = ExecTarget::Named(name.to_string());
        self
    }

    /// Schedules the exec at guest priority and returns the builder.
    ///
    /// # Panics
    ///
    /// Panics if no profile was given.
    pub fn guest(self) -> ScenarioBuilder<'a> {
        self.commit(Priority::GUEST)
    }

    /// Schedules the exec at local priority and returns the builder.
    ///
    /// # Panics
    ///
    /// Panics if no profile was given.
    pub fn local(self) -> ScenarioBuilder<'a> {
        self.commit(Priority::LOCAL)
    }

    fn commit(self, priority: Priority) -> ScenarioBuilder<'a> {
        let profile = self.profile.expect("exec step needs .profile(...)");
        let (ws, target) = (self.ws, self.target);
        self.b.push(Command::Exec {
            ws,
            profile,
            target,
            priority,
        })
    }
}

/// A `migrateprog` step under construction.
pub struct MigrateStep<'a> {
    b: ScenarioBuilder<'a>,
    ws: usize,
    lh: Option<LogicalHostId>,
    destroy_if_stuck: bool,
}

impl<'a> MigrateStep<'a> {
    /// Names the program to migrate (default: first guest program).
    pub fn lh(mut self, lh: LogicalHostId) -> Self {
        self.lh = Some(lh);
        self
    }

    /// Sets the `-n` flag: destroy the program if no host accepts it.
    pub fn destroy_if_stuck(mut self) -> Self {
        self.destroy_if_stuck = true;
        self
    }

    /// Schedules the migration and returns the builder.
    pub fn go(self) -> ScenarioBuilder<'a> {
        let (ws, lh, destroy_if_stuck) = (self.ws, self.lh, self.destroy_if_stuck);
        self.b.push(Command::Migrate {
            ws,
            lh,
            destroy_if_stuck,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::{Cluster, ClusterConfig};
    use vcore::ExecTarget;
    use vkernel::Priority;
    use vsim::SimDuration;
    use vworkload::profiles;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig {
            workstations: 3,
            loss: vnet::LossModel::None,
            ..ClusterConfig::default()
        })
    }

    #[test]
    fn scripted_exec_matches_direct_command() {
        let row = profiles::row("make").expect("row");
        let mut scripted = cluster();
        scripted
            .script()
            .at_ms(500)
            .exec(1)
            .profile(profiles::steady_profile(row))
            .target(ExecTarget::AnyIdle)
            .guest();
        scripted.run_for(SimDuration::from_secs(10));

        let mut direct = cluster();
        direct.at(
            vsim::SimTime::from_micros(500_000),
            crate::runtime::Command::Exec {
                ws: 1,
                profile: profiles::steady_profile(row),
                target: ExecTarget::AnyIdle,
                priority: Priority::GUEST,
            },
        );
        direct.run_for(SimDuration::from_secs(10));

        assert_eq!(scripted.exec_reports.len(), 1);
        assert_eq!(direct.exec_reports.len(), 1);
        assert_eq!(
            scripted.exec_reports[0].chosen_host,
            direct.exec_reports[0].chosen_host
        );
    }

    #[test]
    fn cursor_advances_relatively() {
        let mut c = cluster();
        c.script().at_ms(1_000).crash(2).after_ms(500).reboot(2);
        c.run_for(SimDuration::from_secs(2));
        // The station came back: it accepts frames again.
        assert!(!c.stations[2].down);
    }

    #[test]
    fn scripted_migrate_runs() {
        let mut c = cluster();
        c.script()
            .exec(1)
            .profile(profiles::simulation_profile(SimDuration::from_secs(3600)))
            .on("ws2")
            .guest()
            .at_ms(5_000)
            .migrate(2)
            .go();
        c.run_for(SimDuration::from_secs(30));
        assert_eq!(c.migration_reports.len(), 1);
    }
}
