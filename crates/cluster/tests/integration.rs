//! Full-stack integration tests: remote execution and migration running
//! over the complete simulated cluster (kernels, services, programs, wire).

use vcluster::{Cluster, ClusterConfig, Command};
use vcore::{ExecTarget, MigrationConfig, StopPolicy, Strategy};
use vkernel::Priority;
use vnet::LossModel;
use vsim::{SimDuration, SimTime, TraceEvent, TraceLevel};
use vworkload::profiles;
use vworkload::{Phase, ProgramProfile};

fn quiet_config(workstations: usize) -> ClusterConfig {
    ClusterConfig {
        workstations,
        loss: LossModel::None,
        ..ClusterConfig::default()
    }
}

fn small_compute_profile(name: &str, secs: u64) -> ProgramProfile {
    let row = profiles::row("make").expect("row exists");
    ProgramProfile::steady(
        name,
        profiles::layout_for("make"),
        row.fit(),
        SimDuration::from_secs(secs),
    )
}

#[test]
fn local_execution_runs_to_completion() {
    let mut c = Cluster::new(quiet_config(2));
    c.exec(
        1,
        small_compute_profile("job", 2),
        ExecTarget::Local,
        Priority::LOCAL,
    );
    c.run_for(SimDuration::from_secs(10));
    assert_eq!(c.exec_reports.len(), 1);
    let r = &c.exec_reports[0];
    assert!(r.success, "{r:?}");
    assert_eq!(r.chosen_name.as_deref(), Some("local"));
    assert_eq!(r.selection_time, SimDuration::ZERO);
    assert_eq!(c.stats.programs_finished, 1);
    // The program's logical host is gone after exit.
    assert_eq!(c.locate(r.lh.expect("created")), None);
}

#[test]
fn remote_execution_at_star_selects_in_about_23ms() {
    let mut c = Cluster::new(quiet_config(3));
    c.exec(
        1,
        small_compute_profile("job", 1),
        ExecTarget::AnyIdle,
        Priority::GUEST,
    );
    c.run_for(SimDuration::from_secs(10));
    assert_eq!(c.exec_reports.len(), 1);
    let r = c.exec_reports[0].clone();
    assert!(r.success, "{r:?}");
    let sel_ms = r.selection_time.as_secs_f64() * 1e3;
    assert!(
        (sel_ms - 23.0).abs() < 3.0,
        "selection took {sel_ms:.2} ms, paper says 23 ms"
    );
    assert_eq!(c.stats.programs_finished, 1);
}

#[test]
fn remote_execution_at_named_host() {
    let mut c = Cluster::new(quiet_config(3));
    c.exec(
        1,
        small_compute_profile("job", 1),
        ExecTarget::Named("ws2".into()),
        Priority::GUEST,
    );
    c.run_for(SimDuration::from_secs(10));
    let r = c.exec_reports[0].clone();
    assert!(r.success, "{r:?}");
    assert_eq!(r.chosen_name.as_deref(), Some("ws2"));
    assert_eq!(r.chosen_host, Some(c.stations[2].host));
}

#[test]
fn remote_program_writes_to_origin_display() {
    // Network transparency (§2, Figure 2-1): a remotely executed program's
    // terminal output appears on the display of the workstation it was
    // started from.
    let mut c = Cluster::new(quiet_config(3));
    let profile = ProgramProfile {
        name: "hello".into(),
        layout: profiles::layout_for("make"),
        wws: profiles::row("make").expect("row").fit(),
        phases: vec![
            Phase::Display { chars: 120 },
            Phase::Compute(SimDuration::from_millis(100)),
        ],
    };
    c.exec(1, profile, ExecTarget::Named("ws2".into()), Priority::GUEST);
    c.run_for(SimDuration::from_secs(10));
    assert!(c.exec_reports[0].success);
    // The chars landed on ws1's display, not ws2's.
    assert_eq!(c.stations[1].display.stats().chars, 120);
    assert_eq!(c.stations[2].display.stats().chars, 0);
}

#[test]
fn remote_program_reads_files_from_global_server() {
    let mut c = Cluster::new(quiet_config(3));
    c.file_server_mut().add_file("input.dat", 64 * 1024);
    let profile = ProgramProfile {
        name: "reader".into(),
        layout: profiles::layout_for("make"),
        wws: profiles::row("make").expect("row").fit(),
        phases: vec![Phase::FileRead {
            name: "input.dat".into(),
            bytes: 64 * 1024,
            chunk: 16 * 1024,
        }],
    };
    c.exec(1, profile, ExecTarget::Named("ws2".into()), Priority::GUEST);
    c.run_for(SimDuration::from_secs(20));
    assert!(c.exec_reports[0].success);
    assert_eq!(c.stats.programs_finished, 1);
    assert_eq!(c.file_server().stats().bytes_read, 64 * 1024);
}

#[test]
fn migration_end_to_end_with_precopy() {
    let mut c = Cluster::new(quiet_config(3));
    // A long-running simulation job on ws2 (started from ws1).
    let profile = profiles::simulation_profile(SimDuration::from_secs(120));
    c.exec(1, profile, ExecTarget::Named("ws2".into()), Priority::GUEST);
    c.run_for(SimDuration::from_secs(20));
    assert!(c.exec_reports[0].success);
    let lh = c.exec_reports[0].lh.expect("program created");
    assert_eq!(c.locate(lh), Some(c.stations[2].host));

    // Evict it from ws2.
    c.migrateprog(2, lh, false);
    c.run_for(SimDuration::from_secs(30));

    assert_eq!(c.migration_reports.len(), 1);
    let r = c.migration_reports[0].clone();
    assert!(r.success, "{r:?}");
    assert_eq!(r.strategy, "pre-copy");
    assert!(
        !r.iterations.is_empty(),
        "at least one unfrozen pre-copy round"
    );
    // The program moved somewhere else and keeps running.
    let new_home = c.locate(lh).expect("still alive");
    assert_ne!(new_home, c.stations[2].host);
    assert_eq!(r.to_host, Some(new_home));
    // No residue on the old host.
    assert!(!c.stations[2].kernel.is_resident(lh));
    assert_eq!(c.stations[2].kernel.forwarding_entries(), 0);
    assert!(c.stations[2].programs.is_empty());

    // Freeze time is in the paper's ballpark: well under a second.
    assert!(
        r.freeze_time < SimDuration::from_millis(500),
        "freeze {}",
        r.freeze_time
    );
    // And the program still finishes.
    c.run_for(SimDuration::from_secs(200));
    assert_eq!(c.stats.programs_finished, 1);
}

#[test]
fn freeze_and_copy_baseline_freezes_for_seconds() {
    let mut cfg = quiet_config(3);
    cfg.migration = MigrationConfig {
        strategy: Strategy::FreezeAndCopy,
        ..MigrationConfig::default()
    };
    let mut c = Cluster::new(cfg);
    let profile = profiles::simulation_profile(SimDuration::from_secs(120));
    c.exec(1, profile, ExecTarget::Named("ws2".into()), Priority::GUEST);
    c.run_for(SimDuration::from_secs(20));
    let lh = c.exec_reports[0].lh.expect("created");
    c.migrateprog(2, lh, false);
    c.run_for(SimDuration::from_secs(30));
    let r = c.migration_reports[0].clone();
    assert!(r.success, "{r:?}");
    assert_eq!(r.strategy, "freeze-and-copy");
    assert!(r.iterations.is_empty());
    // ~1 MB program: about 3 seconds frozen.
    assert!(
        r.freeze_time > SimDuration::from_secs(2),
        "freeze {}",
        r.freeze_time
    );
    c.run_for(SimDuration::from_secs(200));
    assert_eq!(c.stats.programs_finished, 1);
}

#[test]
fn precopy_beats_freeze_and_copy_by_orders_of_magnitude() {
    let freeze_time_of = |strategy: Strategy| {
        let mut cfg = quiet_config(3);
        cfg.migration = MigrationConfig {
            strategy,
            ..MigrationConfig::default()
        };
        let mut c = Cluster::new(cfg);
        let profile = profiles::simulation_profile(SimDuration::from_secs(120));
        c.exec(1, profile, ExecTarget::Named("ws2".into()), Priority::GUEST);
        c.run_for(SimDuration::from_secs(20));
        let lh = c.exec_reports[0].lh.expect("created");
        c.migrateprog(2, lh, false);
        c.run_for(SimDuration::from_secs(60));
        assert!(c.migration_reports[0].success);
        c.migration_reports[0].freeze_time
    };
    let pre = freeze_time_of(Strategy::PreCopy(StopPolicy::default()));
    let frz = freeze_time_of(Strategy::FreezeAndCopy);
    let ratio = frz.as_secs_f64() / pre.as_secs_f64();
    assert!(
        ratio > 5.0,
        "pre-copy {pre} vs freeze-and-copy {frz} (ratio {ratio:.1})"
    );
}

#[test]
fn migrateprog_dash_n_destroys_when_no_host() {
    // Only one workstation: nowhere to migrate to.
    let mut c = Cluster::new(quiet_config(1));
    let profile = profiles::simulation_profile(SimDuration::from_secs(120));
    c.exec(1, profile, ExecTarget::Local, Priority::LOCAL);
    c.run_for(SimDuration::from_secs(20));
    let lh = c.exec_reports[0].lh.expect("created");

    c.migrateprog(1, lh, true);
    c.run_for(SimDuration::from_secs(60));
    assert_eq!(c.migration_reports.len(), 1);
    let r = &c.migration_reports[0];
    assert!(!r.success);
    assert_eq!(r.failure, Some(vcore::MigFailure::Destroyed));
    assert_eq!(c.locate(lh), None, "program destroyed");
}

#[test]
fn migrateprog_without_dash_n_keeps_program_when_no_host() {
    let mut c = Cluster::new(quiet_config(1));
    let profile = profiles::simulation_profile(SimDuration::from_secs(60));
    c.exec(1, profile, ExecTarget::Local, Priority::LOCAL);
    c.run_for(SimDuration::from_secs(20));
    let lh = c.exec_reports[0].lh.expect("created");

    c.migrateprog(1, lh, false);
    c.run_for(SimDuration::from_secs(30));
    let r = &c.migration_reports[0];
    assert!(!r.success);
    assert_eq!(r.failure, Some(vcore::MigFailure::NoHostFound));
    // The program is still there and still running.
    assert_eq!(c.locate(lh), Some(c.stations[1].host));
    c.run_for(SimDuration::from_secs(120));
    assert_eq!(c.stats.programs_finished, 1);
}

#[test]
fn owner_return_evicts_guests_within_seconds() {
    let mut cfg = quiet_config(4);
    cfg.evict_on_owner_return = true;
    let mut c = Cluster::new(cfg);
    let profile = profiles::simulation_profile(SimDuration::from_secs(300));
    c.exec(1, profile, ExecTarget::Named("ws2".into()), Priority::GUEST);
    c.run_for(SimDuration::from_secs(20));
    let lh = c.exec_reports[0].lh.expect("created");
    assert_eq!(c.locate(lh), Some(c.stations[2].host));

    // The owner of ws2 sits down.
    let t = c.now();
    c.at(
        t + SimDuration::from_millis(1),
        Command::SetOwnerActive {
            ws: 2,
            active: true,
        },
    );
    c.run_for(SimDuration::from_secs(60));

    assert_eq!(c.stats.owner_evictions, 1);
    assert_eq!(c.reclaim_times.len(), 1, "reclaim recorded");
    let reclaim = c.reclaim_times[0];
    // "A user must be able to quickly reclaim his workstation ... within a
    // few seconds time" (§1).
    assert!(
        reclaim < SimDuration::from_secs(15),
        "reclaim took {reclaim}"
    );
    // The guest kept running elsewhere.
    let home = c.locate(lh).expect("guest survived eviction");
    assert_ne!(home, c.stations[2].host);
}

#[test]
fn local_editor_unaffected_by_guest_job() {
    // §2: "a text-editing user need not notice the presence of background
    // jobs" thanks to priority scheduling.
    let response_with_guest = |guest: bool| {
        let mut c = Cluster::new(quiet_config(2));
        if guest {
            let sim = profiles::simulation_profile(SimDuration::from_secs(600));
            c.exec(1, sim, ExecTarget::Named("ws1".into()), Priority::GUEST);
            c.run_for(SimDuration::from_secs(10));
        }
        let editor = profiles::editor_profile(60);
        c.exec(1, editor, ExecTarget::Local, Priority::LOCAL);
        c.run_for(SimDuration::from_secs(120));
        let lh = c
            .exec_reports
            .iter()
            .find(|r| r.image == "edit")
            .and_then(|r| r.lh)
            .expect("editor created");
        // The editor may have finished (and been destroyed); look at its
        // recorded response times via the behaviour if still present, else
        // accept that it finished comfortably.
        c.stations
            .iter()
            .flat_map(|w| w.programs.get(&lh))
            .map(|p| p.behavior.response_times.mean())
            .next()
    };
    // Both configurations should leave the editor responsive; detailed
    // latency comparison is experiment E10's job. Here we just require the
    // editor finished despite a CPU-hungry guest.
    let _ = response_with_guest(false);
    let mut c = Cluster::new(quiet_config(2));
    let sim = profiles::simulation_profile(SimDuration::from_secs(600));
    c.exec(1, sim, ExecTarget::Named("ws1".into()), Priority::GUEST);
    c.run_for(SimDuration::from_secs(10));
    c.exec(
        1,
        profiles::editor_profile(40),
        ExecTarget::Local,
        Priority::LOCAL,
    );
    c.run_for(SimDuration::from_secs(120));
    assert!(
        c.stats.programs_finished >= 1,
        "editor finished despite the guest"
    );
}

#[test]
fn vm_flush_migration_works_and_double_copies_dirty_pages() {
    let mut cfg = quiet_config(3);
    cfg.migration = MigrationConfig {
        strategy: Strategy::VmFlush {
            paging_lh: vcluster::PAGING_LH,
            paging_space: vmem::SpaceId(0),
            stop: StopPolicy::default(),
        },
        ..MigrationConfig::default()
    };
    let mut c = Cluster::new(cfg);
    let profile = profiles::simulation_profile(SimDuration::from_secs(120));
    c.exec(1, profile, ExecTarget::Named("ws2".into()), Priority::GUEST);
    c.run_for(SimDuration::from_secs(20));
    let lh = c.exec_reports[0].lh.expect("created");
    c.migrateprog(2, lh, false);
    c.run_for(SimDuration::from_secs(60));
    let r = c.migration_reports[0].clone();
    assert!(r.success, "{r:?}");
    assert_eq!(r.strategy, "vm-flush");
    assert!(r.double_copied_bytes > 0);
    // VM-flush ships only written pages, so it moves less data
    // source-side than a full pre-copy of the ~1 MB program would.
    assert!(r.precopied_bytes() + r.residual_bytes < 1024 * 1024);
    // The program survived...
    let home = c.locate(lh).expect("program alive");
    // ...and the new host really demand-fetched the flushed pages back
    // from the paging store (CopyFrom traffic, §3.2's second transfer).
    c.run_for(SimDuration::from_secs(30));
    let target = c.index_of(home);
    assert_eq!(
        c.stations[target].pm.stats().fetched_bytes,
        r.double_copied_bytes,
        "exactly the unique flushed pages came back over the wire"
    );
    assert!(c.stations[target].pm.stats().fetched_bytes > 0);
    assert_eq!(c.stations[0].kernel.stats().pulls_served, 1);
}

#[test]
fn deterministic_given_same_seed() {
    let run = || {
        let mut c = Cluster::new(quiet_config(3));
        c.exec(
            1,
            small_compute_profile("job", 3),
            ExecTarget::AnyIdle,
            Priority::GUEST,
        );
        c.run_for(SimDuration::from_secs(30));
        (
            c.exec_reports[0].selection_time,
            c.exec_reports[0].total_time,
            c.net.stats().frames_sent,
            c.events_delivered(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn cluster_survives_running_past_all_events() {
    let mut c = Cluster::new(quiet_config(2));
    c.run_until(SimTime::ZERO + SimDuration::from_secs(5));
    assert!(c.now() <= SimTime::ZERO + SimDuration::from_secs(5));
}

#[test]
fn cc68_pipeline_decomposes_onto_other_hosts() {
    // §2 / §4.1 footnote: cc68 runs five passes as subprograms, each
    // placed by the @* machinery and awaited via WaitProgram.
    let mut c = Cluster::new(quiet_config(4));
    c.exec(
        1,
        profiles::cc68_pipeline(),
        ExecTarget::Named("ws1".into()),
        Priority::LOCAL,
    );
    c.run_for(SimDuration::from_secs(400));
    // Control program + 5 passes all finished.
    assert_eq!(c.stats.programs_finished, 6, "control + five passes");
    let pass_reports: Vec<_> = c
        .exec_reports
        .iter()
        .filter(|r| r.image != "cc68")
        .collect();
    assert!(
        pass_reports.is_empty(),
        "passes are spawned by the program, not the shell"
    );
    // Each PM that hosted a pass created a program.
    let created: u64 = c
        .stations
        .iter()
        .map(|w| w.pm.stats().programs_created)
        .sum();
    assert_eq!(created, 6);
}

#[test]
fn suspend_and_resume_work_remotely() {
    // §2: suspension works "independent of whether the program is
    // executing locally or remotely". Suspend = freeze in place.
    let mut c = Cluster::new(quiet_config(3));
    let profile = profiles::simulation_profile(SimDuration::from_secs(30));
    c.exec(1, profile, ExecTarget::Named("ws2".into()), Priority::GUEST);
    c.run_for(SimDuration::from_secs(10));
    let lh = c.exec_reports[0].lh.expect("created");

    // Suspend from ws1, across the network.
    c.suspendprog(1, lh);
    c.run_for(SimDuration::from_secs(30));
    assert!(
        c.stations[2]
            .kernel
            .logical_host(lh)
            .expect("resident")
            .is_frozen(),
        "suspended"
    );
    let cpu_at_suspend = cpu_of(&c, lh);
    c.run_for(SimDuration::from_secs(10));
    assert_eq!(cpu_of(&c, lh), cpu_at_suspend, "no CPU while suspended");

    // Resume, also remotely.
    c.resumeprog(1, lh);
    c.run_for(SimDuration::from_secs(60));
    assert_eq!(c.stats.programs_finished, 1, "finished after resume");
}

#[test]
fn suspended_program_survives_migration() {
    // Migrating a *suspended* program: the freeze flag is part of the
    // kernel state; after eviction it resumes only when asked.
    let mut c = Cluster::new(quiet_config(3));
    let profile = profiles::simulation_profile(SimDuration::from_secs(60));
    c.exec(1, profile, ExecTarget::Named("ws2".into()), Priority::GUEST);
    c.run_for(SimDuration::from_secs(10));
    let lh = c.exec_reports[0].lh.expect("created");
    c.suspendprog(1, lh);
    c.run_for(SimDuration::from_secs(5));

    c.migrateprog(2, lh, false);
    c.run_for(SimDuration::from_secs(60));
    let r = &c.migration_reports[0];
    assert!(r.success, "{r:?}");
    // After migration the program is unfrozen (unfreeze_migrated) on its
    // new host and eventually finishes.
    c.run_for(SimDuration::from_secs(120));
    assert_eq!(c.stats.programs_finished, 1);
}

fn cpu_of(c: &Cluster, lh: vkernel::LogicalHostId) -> u64 {
    c.stations
        .iter()
        .find_map(|w| w.programs.get(&lh))
        .map(|p| p.behavior.stats().cpu_micros)
        .unwrap_or(u64::MAX)
}

#[test]
fn file_server_crash_fails_program_load_cleanly() {
    let mut c = Cluster::new(quiet_config(2));
    let profile = profiles::simulation_profile(SimDuration::from_secs(30));
    // Crash the file-server machine just as the load begins.
    let t = c.now();
    c.at(t + SimDuration::from_millis(100), Command::Crash { ws: 0 });
    c.exec(1, profile, ExecTarget::Named("ws2".into()), Priority::GUEST);
    c.run_for(SimDuration::from_secs(120));
    assert_eq!(c.exec_reports.len(), 1, "execution resolved");
    assert!(!c.exec_reports[0].success, "load must fail, not hang");
    assert_eq!(c.stats.programs_finished, 0);
}

/// Churn: hours of simulated cluster life — owners coming and going with
/// auto-eviction, jobs arriving at random — must settle with conservation
/// invariants intact.
#[test]
fn long_churn_preserves_invariants() {
    use vsim::DetRng;
    use vworkload::UserModelParams;
    let cfg = ClusterConfig {
        workstations: 8,
        seed: 777,
        loss: LossModel::Bernoulli(1e-3),
        users: Some(UserModelParams {
            mean_active: SimDuration::from_secs(120),
            mean_idle: SimDuration::from_secs(300),
            initially_active: 0.3,
        }),
        evict_on_owner_return: true,
        ..ClusterConfig::default()
    };
    let mut c = Cluster::new(cfg);
    let mut rng = DetRng::seed(31337);
    let horizon = SimDuration::from_secs(1800); // Half a simulated hour.
    let mut t = SimTime::ZERO;
    let mut issued = 0;
    loop {
        t += SimDuration::from_secs_f64(rng.exp_f64(60.0));
        if t >= SimTime::ZERO + horizon {
            break;
        }
        let name = *rng.pick(&["make", "cc68", "optimizer", "assembler"]);
        let row = profiles::row(name).expect("known");
        c.at(
            t,
            Command::Exec {
                ws: 1 + rng.index(8),
                profile: profiles::steady_profile(row),
                target: ExecTarget::AnyIdle,
                priority: vkernel::Priority::GUEST,
            },
        );
        issued += 1;
    }
    c.run_until(SimTime::ZERO + horizon);
    // Drain whatever is still in flight.
    c.run_for(SimDuration::from_secs(300));

    assert_eq!(c.exec_reports.len(), issued, "every request resolved");
    let succeeded = c.exec_reports.iter().filter(|r| r.success).count();
    assert!(
        succeeded * 10 >= issued * 9,
        "{succeeded}/{issued} honored — the paper says almost all"
    );
    // Conservation: finished + still-running == succeeded.
    let still_running: usize = c.stations.iter().map(|w| w.programs.len()).sum();
    assert_eq!(
        c.stats.programs_finished as usize + still_running,
        succeeded,
        "no program lost or duplicated"
    );
    // Every surviving logical host lives on exactly one station, and its
    // behaviour lives where its kernel state lives.
    for r in &c.exec_reports {
        let Some(lh) = r.lh else { continue };
        let kernel_homes: Vec<_> = c
            .stations
            .iter()
            .filter(|w| w.kernel.is_resident(lh))
            .map(|w| w.host)
            .collect();
        let behavior_homes: Vec<_> = c
            .stations
            .iter()
            .filter(|w| w.programs.contains_key(&lh))
            .map(|w| w.host)
            .collect();
        assert!(kernel_homes.len() <= 1, "{lh} kernel state duplicated");
        assert_eq!(kernel_homes, behavior_homes, "{lh} split brain");
    }
    // All migrations that claimed success really evicted.
    for m in &c.migration_reports {
        if m.success {
            assert_ne!(Some(m.from_host), m.to_host);
        }
    }
}

#[test]
fn migration_emits_typed_trace_timeline() {
    let mut c = Cluster::new(ClusterConfig {
        trace: TraceLevel::Detail,
        ..quiet_config(3)
    });
    let profile = profiles::simulation_profile(SimDuration::from_secs(120));
    c.exec(1, profile, ExecTarget::Named("ws2".into()), Priority::GUEST);
    c.run_for(SimDuration::from_secs(20));
    let lh = c.exec_reports[0].lh.expect("program created");
    c.migrateprog(2, lh, false);
    c.run_for(SimDuration::from_secs(30));
    assert!(c.migration_reports[0].success);

    // Fold the per-component traces (kernels, migrators, wire) into the
    // cluster timeline, then assert structurally — no message grepping.
    c.merge_component_traces();
    let n = lh.0;
    assert_eq!(
        c.trace()
            .count_matching(|e| matches!(e, TraceEvent::Freeze { lh } if *lh == n)),
        1,
        "pre-copy freezes exactly once, at the end"
    );
    assert_eq!(
        c.trace()
            .count_matching(|e| matches!(e, TraceEvent::Unfreeze { lh } if *lh == n)),
        1
    );
    assert!(
        c.trace()
            .count_matching(|e| matches!(e, TraceEvent::PrecopyRound { lh, .. } if *lh == n))
            >= 1,
        "at least one unfrozen pre-copy round traced"
    );
    assert_eq!(
        c.trace().count_matching(|e| matches!(
            e,
            TraceEvent::MigrationDone { lh, success: true, .. } if *lh == n
        )),
        1
    );
    assert_eq!(
        c.trace()
            .count_matching(|e| matches!(e, TraceEvent::Rebind { lh, .. } if *lh == n)),
        1
    );
    // And the timeline is ordered: every pre-copy round precedes the
    // freeze, which precedes the unfreeze.
    let pos = |pred: &dyn Fn(&TraceEvent) -> bool| {
        c.trace()
            .records()
            .iter()
            .position(|r| pred(&r.event))
            .expect("event present")
    };
    let freeze_at = pos(&|e| matches!(e, TraceEvent::Freeze { lh } if *lh == n));
    let unfreeze_at = pos(&|e| matches!(e, TraceEvent::Unfreeze { lh } if *lh == n));
    let round_at = pos(&|e| matches!(e, TraceEvent::PrecopyRound { lh, .. } if *lh == n));
    assert!(round_at < freeze_at && freeze_at < unfreeze_at);
}

#[test]
fn remote_exec_emits_typed_exec_done() {
    let mut c = Cluster::new(ClusterConfig {
        trace: TraceLevel::Info,
        ..quiet_config(3)
    });
    c.exec(
        1,
        small_compute_profile("job", 1),
        ExecTarget::AnyIdle,
        Priority::GUEST,
    );
    c.run_for(SimDuration::from_secs(10));
    assert_eq!(
        c.trace().count_matching(|e| matches!(
            e,
            TraceEvent::ExecDone {
                success: true,
                host: Some(_),
                ..
            }
        )),
        1
    );
    assert_eq!(
        c.trace()
            .count_matching(|e| matches!(e, TraceEvent::ProgramStarted { .. })),
        1
    );
}
