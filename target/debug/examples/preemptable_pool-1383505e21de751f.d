/root/repo/target/debug/examples/preemptable_pool-1383505e21de751f.d: examples/preemptable_pool.rs

/root/repo/target/debug/examples/preemptable_pool-1383505e21de751f: examples/preemptable_pool.rs

examples/preemptable_pool.rs:
