/root/repo/target/debug/examples/suspend_resume-064a2addd144d849.d: examples/suspend_resume.rs Cargo.toml

/root/repo/target/debug/examples/libsuspend_resume-064a2addd144d849.rmeta: examples/suspend_resume.rs Cargo.toml

examples/suspend_resume.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
