/root/repo/target/debug/examples/distributed_make-1c3a3c9a81a7cb15.d: examples/distributed_make.rs

/root/repo/target/debug/examples/distributed_make-1c3a3c9a81a7cb15: examples/distributed_make.rs

examples/distributed_make.rs:
