/root/repo/target/debug/examples/preemptable_pool-0c80c19ac6c81078.d: examples/preemptable_pool.rs Cargo.toml

/root/repo/target/debug/examples/libpreemptable_pool-0c80c19ac6c81078.rmeta: examples/preemptable_pool.rs Cargo.toml

examples/preemptable_pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
