/root/repo/target/debug/examples/communication_paths-53ce0e54bda3b127.d: examples/communication_paths.rs Cargo.toml

/root/repo/target/debug/examples/libcommunication_paths-53ce0e54bda3b127.rmeta: examples/communication_paths.rs Cargo.toml

examples/communication_paths.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
