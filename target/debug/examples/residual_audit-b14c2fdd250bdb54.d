/root/repo/target/debug/examples/residual_audit-b14c2fdd250bdb54.d: examples/residual_audit.rs

/root/repo/target/debug/examples/residual_audit-b14c2fdd250bdb54: examples/residual_audit.rs

examples/residual_audit.rs:
