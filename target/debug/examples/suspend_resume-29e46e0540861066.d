/root/repo/target/debug/examples/suspend_resume-29e46e0540861066.d: examples/suspend_resume.rs

/root/repo/target/debug/examples/suspend_resume-29e46e0540861066: examples/suspend_resume.rs

examples/suspend_resume.rs:
