/root/repo/target/debug/examples/communication_paths-ea6ad3cb2029c300.d: examples/communication_paths.rs

/root/repo/target/debug/examples/communication_paths-ea6ad3cb2029c300: examples/communication_paths.rs

examples/communication_paths.rs:
