/root/repo/target/debug/examples/quickstart-9dc22439cbd0338c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9dc22439cbd0338c: examples/quickstart.rs

examples/quickstart.rs:
