/root/repo/target/debug/examples/distributed_make-0b0f629e8b10f90f.d: examples/distributed_make.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_make-0b0f629e8b10f90f.rmeta: examples/distributed_make.rs Cargo.toml

examples/distributed_make.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
