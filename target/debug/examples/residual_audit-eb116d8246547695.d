/root/repo/target/debug/examples/residual_audit-eb116d8246547695.d: examples/residual_audit.rs Cargo.toml

/root/repo/target/debug/examples/libresidual_audit-eb116d8246547695.rmeta: examples/residual_audit.rs Cargo.toml

examples/residual_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
