/root/repo/target/debug/deps/services-0d3dfa88632bd8c4.d: crates/services/tests/services.rs Cargo.toml

/root/repo/target/debug/deps/libservices-0d3dfa88632bd8c4.rmeta: crates/services/tests/services.rs Cargo.toml

crates/services/tests/services.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
