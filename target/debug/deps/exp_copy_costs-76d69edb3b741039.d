/root/repo/target/debug/deps/exp_copy_costs-76d69edb3b741039.d: crates/bench/src/bin/exp_copy_costs.rs Cargo.toml

/root/repo/target/debug/deps/libexp_copy_costs-76d69edb3b741039.rmeta: crates/bench/src/bin/exp_copy_costs.rs Cargo.toml

crates/bench/src/bin/exp_copy_costs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
