/root/repo/target/debug/deps/vcluster-9493a781b435a602.d: crates/cluster/src/lib.rs crates/cluster/src/runtime.rs crates/cluster/src/script.rs

/root/repo/target/debug/deps/vcluster-9493a781b435a602: crates/cluster/src/lib.rs crates/cluster/src/runtime.rs crates/cluster/src/script.rs

crates/cluster/src/lib.rs:
crates/cluster/src/runtime.rs:
crates/cluster/src/script.rs:
