/root/repo/target/debug/deps/vworkload-d792de1e53ecea3b.d: crates/workload/src/lib.rs crates/workload/src/profiles.rs crates/workload/src/program.rs crates/workload/src/user.rs

/root/repo/target/debug/deps/vworkload-d792de1e53ecea3b: crates/workload/src/lib.rs crates/workload/src/profiles.rs crates/workload/src/program.rs crates/workload/src/user.rs

crates/workload/src/lib.rs:
crates/workload/src/profiles.rs:
crates/workload/src/program.rs:
crates/workload/src/user.rs:
