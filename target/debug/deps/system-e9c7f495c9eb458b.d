/root/repo/target/debug/deps/system-e9c7f495c9eb458b.d: tests/system.rs Cargo.toml

/root/repo/target/debug/deps/libsystem-e9c7f495c9eb458b.rmeta: tests/system.rs Cargo.toml

tests/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
