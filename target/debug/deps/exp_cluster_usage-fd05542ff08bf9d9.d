/root/repo/target/debug/deps/exp_cluster_usage-fd05542ff08bf9d9.d: crates/bench/src/bin/exp_cluster_usage.rs Cargo.toml

/root/repo/target/debug/deps/libexp_cluster_usage-fd05542ff08bf9d9.rmeta: crates/bench/src/bin/exp_cluster_usage.rs Cargo.toml

crates/bench/src/bin/exp_cluster_usage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
