/root/repo/target/debug/deps/exp_vm_flush-df16402a4e34ee9d.d: crates/bench/src/bin/exp_vm_flush.rs Cargo.toml

/root/repo/target/debug/deps/libexp_vm_flush-df16402a4e34ee9d.rmeta: crates/bench/src/bin/exp_vm_flush.rs Cargo.toml

crates/bench/src/bin/exp_vm_flush.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
