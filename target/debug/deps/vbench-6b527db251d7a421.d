/root/repo/target/debug/deps/vbench-6b527db251d7a421.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvbench-6b527db251d7a421.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
