/root/repo/target/debug/deps/vbench-eba53bc725406edf.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libvbench-eba53bc725406edf.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libvbench-eba53bc725406edf.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
