/root/repo/target/debug/deps/vservices-8a69850257eca1e8.d: crates/services/src/lib.rs crates/services/src/display.rs crates/services/src/env.rs crates/services/src/file_server.rs crates/services/src/msg.rs crates/services/src/program_manager.rs crates/services/src/service.rs

/root/repo/target/debug/deps/vservices-8a69850257eca1e8: crates/services/src/lib.rs crates/services/src/display.rs crates/services/src/env.rs crates/services/src/file_server.rs crates/services/src/msg.rs crates/services/src/program_manager.rs crates/services/src/service.rs

crates/services/src/lib.rs:
crates/services/src/display.rs:
crates/services/src/env.rs:
crates/services/src/file_server.rs:
crates/services/src/msg.rs:
crates/services/src/program_manager.rs:
crates/services/src/service.rs:
