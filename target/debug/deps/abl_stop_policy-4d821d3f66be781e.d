/root/repo/target/debug/deps/abl_stop_policy-4d821d3f66be781e.d: crates/bench/src/bin/abl_stop_policy.rs

/root/repo/target/debug/deps/abl_stop_policy-4d821d3f66be781e: crates/bench/src/bin/abl_stop_policy.rs

crates/bench/src/bin/abl_stop_policy.rs:
