/root/repo/target/debug/deps/vcluster-ea028b2e2a78b77d.d: crates/cluster/src/lib.rs crates/cluster/src/runtime.rs crates/cluster/src/script.rs

/root/repo/target/debug/deps/libvcluster-ea028b2e2a78b77d.rlib: crates/cluster/src/lib.rs crates/cluster/src/runtime.rs crates/cluster/src/script.rs

/root/repo/target/debug/deps/libvcluster-ea028b2e2a78b77d.rmeta: crates/cluster/src/lib.rs crates/cluster/src/runtime.rs crates/cluster/src/script.rs

crates/cluster/src/lib.rs:
crates/cluster/src/runtime.rs:
crates/cluster/src/script.rs:
