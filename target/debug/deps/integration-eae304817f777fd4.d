/root/repo/target/debug/deps/integration-eae304817f777fd4.d: crates/cluster/tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-eae304817f777fd4.rmeta: crates/cluster/tests/integration.rs Cargo.toml

crates/cluster/tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
