/root/repo/target/debug/deps/abl_selection-128543bfb6ce48ae.d: crates/bench/src/bin/abl_selection.rs Cargo.toml

/root/repo/target/debug/deps/libabl_selection-128543bfb6ce48ae.rmeta: crates/bench/src/bin/abl_selection.rs Cargo.toml

crates/bench/src/bin/abl_selection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
