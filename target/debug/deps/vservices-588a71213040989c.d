/root/repo/target/debug/deps/vservices-588a71213040989c.d: crates/services/src/lib.rs crates/services/src/display.rs crates/services/src/env.rs crates/services/src/file_server.rs crates/services/src/msg.rs crates/services/src/program_manager.rs crates/services/src/service.rs Cargo.toml

/root/repo/target/debug/deps/libvservices-588a71213040989c.rmeta: crates/services/src/lib.rs crates/services/src/display.rs crates/services/src/env.rs crates/services/src/file_server.rs crates/services/src/msg.rs crates/services/src/program_manager.rs crates/services/src/service.rs Cargo.toml

crates/services/src/lib.rs:
crates/services/src/display.rs:
crates/services/src/env.rs:
crates/services/src/file_server.rs:
crates/services/src/msg.rs:
crates/services/src/program_manager.rs:
crates/services/src/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
