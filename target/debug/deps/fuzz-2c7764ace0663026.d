/root/repo/target/debug/deps/fuzz-2c7764ace0663026.d: crates/kernel/tests/fuzz.rs

/root/repo/target/debug/deps/fuzz-2c7764ace0663026: crates/kernel/tests/fuzz.rs

crates/kernel/tests/fuzz.rs:
