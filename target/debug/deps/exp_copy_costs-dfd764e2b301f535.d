/root/repo/target/debug/deps/exp_copy_costs-dfd764e2b301f535.d: crates/bench/src/bin/exp_copy_costs.rs

/root/repo/target/debug/deps/exp_copy_costs-dfd764e2b301f535: crates/bench/src/bin/exp_copy_costs.rs

crates/bench/src/bin/exp_copy_costs.rs:
