/root/repo/target/debug/deps/protocol-48387646c06cd5a2.d: crates/kernel/tests/protocol.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol-48387646c06cd5a2.rmeta: crates/kernel/tests/protocol.rs Cargo.toml

crates/kernel/tests/protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
