/root/repo/target/debug/deps/vworkload-3ff38edce243e3a8.d: crates/workload/src/lib.rs crates/workload/src/profiles.rs crates/workload/src/program.rs crates/workload/src/user.rs Cargo.toml

/root/repo/target/debug/deps/libvworkload-3ff38edce243e3a8.rmeta: crates/workload/src/lib.rs crates/workload/src/profiles.rs crates/workload/src/program.rs crates/workload/src/user.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/profiles.rs:
crates/workload/src/program.rs:
crates/workload/src/user.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
