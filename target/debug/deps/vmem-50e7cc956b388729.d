/root/repo/target/debug/deps/vmem-50e7cc956b388729.d: crates/mem/src/lib.rs crates/mem/src/bitset.rs crates/mem/src/space.rs crates/mem/src/wws.rs

/root/repo/target/debug/deps/vmem-50e7cc956b388729: crates/mem/src/lib.rs crates/mem/src/bitset.rs crates/mem/src/space.rs crates/mem/src/wws.rs

crates/mem/src/lib.rs:
crates/mem/src/bitset.rs:
crates/mem/src/space.rs:
crates/mem/src/wws.rs:
