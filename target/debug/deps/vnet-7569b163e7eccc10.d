/root/repo/target/debug/deps/vnet-7569b163e7eccc10.d: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/ethernet.rs crates/net/src/frame.rs crates/net/src/loss.rs Cargo.toml

/root/repo/target/debug/deps/libvnet-7569b163e7eccc10.rmeta: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/ethernet.rs crates/net/src/frame.rs crates/net/src/loss.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/addr.rs:
crates/net/src/ethernet.rs:
crates/net/src/frame.rs:
crates/net/src/loss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
