/root/repo/target/debug/deps/exp_cluster_usage-2f6c430a1ec93c94.d: crates/bench/src/bin/exp_cluster_usage.rs

/root/repo/target/debug/deps/exp_cluster_usage-2f6c430a1ec93c94: crates/bench/src/bin/exp_cluster_usage.rs

crates/bench/src/bin/exp_cluster_usage.rs:
