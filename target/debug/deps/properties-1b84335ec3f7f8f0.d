/root/repo/target/debug/deps/properties-1b84335ec3f7f8f0.d: tests/properties.rs

/root/repo/target/debug/deps/properties-1b84335ec3f7f8f0: tests/properties.rs

tests/properties.rs:
