/root/repo/target/debug/deps/vmem-d6f70abdec773b66.d: crates/mem/src/lib.rs crates/mem/src/bitset.rs crates/mem/src/space.rs crates/mem/src/wws.rs

/root/repo/target/debug/deps/libvmem-d6f70abdec773b66.rlib: crates/mem/src/lib.rs crates/mem/src/bitset.rs crates/mem/src/space.rs crates/mem/src/wws.rs

/root/repo/target/debug/deps/libvmem-d6f70abdec773b66.rmeta: crates/mem/src/lib.rs crates/mem/src/bitset.rs crates/mem/src/space.rs crates/mem/src/wws.rs

crates/mem/src/lib.rs:
crates/mem/src/bitset.rs:
crates/mem/src/space.rs:
crates/mem/src/wws.rs:
