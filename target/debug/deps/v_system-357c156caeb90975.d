/root/repo/target/debug/deps/v_system-357c156caeb90975.d: src/lib.rs

/root/repo/target/debug/deps/libv_system-357c156caeb90975.rlib: src/lib.rs

/root/repo/target/debug/deps/libv_system-357c156caeb90975.rmeta: src/lib.rs

src/lib.rs:
