/root/repo/target/debug/deps/protocol-91584fa86fccf04e.d: crates/kernel/tests/protocol.rs

/root/repo/target/debug/deps/protocol-91584fa86fccf04e: crates/kernel/tests/protocol.rs

crates/kernel/tests/protocol.rs:
