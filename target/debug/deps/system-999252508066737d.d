/root/repo/target/debug/deps/system-999252508066737d.d: tests/system.rs

/root/repo/target/debug/deps/system-999252508066737d: tests/system.rs

tests/system.rs:
