/root/repo/target/debug/deps/exp_cluster_usage-5c310862e5951669.d: crates/bench/src/bin/exp_cluster_usage.rs Cargo.toml

/root/repo/target/debug/deps/libexp_cluster_usage-5c310862e5951669.rmeta: crates/bench/src/bin/exp_cluster_usage.rs Cargo.toml

crates/bench/src/bin/exp_cluster_usage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
