/root/repo/target/debug/deps/abl_selection-8a2cdbfc65ffa96a.d: crates/bench/src/bin/abl_selection.rs

/root/repo/target/debug/deps/abl_selection-8a2cdbfc65ffa96a: crates/bench/src/bin/abl_selection.rs

crates/bench/src/bin/abl_selection.rs:
