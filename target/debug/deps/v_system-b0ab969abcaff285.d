/root/repo/target/debug/deps/v_system-b0ab969abcaff285.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libv_system-b0ab969abcaff285.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
