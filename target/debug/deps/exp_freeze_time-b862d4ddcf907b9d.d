/root/repo/target/debug/deps/exp_freeze_time-b862d4ddcf907b9d.d: crates/bench/src/bin/exp_freeze_time.rs Cargo.toml

/root/repo/target/debug/deps/libexp_freeze_time-b862d4ddcf907b9d.rmeta: crates/bench/src/bin/exp_freeze_time.rs Cargo.toml

crates/bench/src/bin/exp_freeze_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
