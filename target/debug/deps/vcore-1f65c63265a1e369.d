/root/repo/target/debug/deps/vcore-1f65c63265a1e369.d: crates/core/src/lib.rs crates/core/src/migration.rs crates/core/src/remote_exec.rs crates/core/src/report.rs crates/core/src/residual.rs

/root/repo/target/debug/deps/vcore-1f65c63265a1e369: crates/core/src/lib.rs crates/core/src/migration.rs crates/core/src/remote_exec.rs crates/core/src/report.rs crates/core/src/residual.rs

crates/core/src/lib.rs:
crates/core/src/migration.rs:
crates/core/src/remote_exec.rs:
crates/core/src/report.rs:
crates/core/src/residual.rs:
