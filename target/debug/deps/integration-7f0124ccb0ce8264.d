/root/repo/target/debug/deps/integration-7f0124ccb0ce8264.d: crates/cluster/tests/integration.rs

/root/repo/target/debug/deps/integration-7f0124ccb0ce8264: crates/cluster/tests/integration.rs

crates/cluster/tests/integration.rs:
