/root/repo/target/debug/deps/exp_local_priority-77eb73e905ba3195.d: crates/bench/src/bin/exp_local_priority.rs Cargo.toml

/root/repo/target/debug/deps/libexp_local_priority-77eb73e905ba3195.rmeta: crates/bench/src/bin/exp_local_priority.rs Cargo.toml

crates/bench/src/bin/exp_local_priority.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
