/root/repo/target/debug/deps/vsim-151abb4ca1bb378a.d: crates/sim/src/lib.rs crates/sim/src/calib.rs crates/sim/src/engine.rs crates/sim/src/json.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/vsim-151abb4ca1bb378a: crates/sim/src/lib.rs crates/sim/src/calib.rs crates/sim/src/engine.rs crates/sim/src/json.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/calib.rs:
crates/sim/src/engine.rs:
crates/sim/src/json.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
