/root/repo/target/debug/deps/exp_freeze_distribution-da22b74ef0944562.d: crates/bench/src/bin/exp_freeze_distribution.rs

/root/repo/target/debug/deps/exp_freeze_distribution-da22b74ef0944562: crates/bench/src/bin/exp_freeze_distribution.rs

crates/bench/src/bin/exp_freeze_distribution.rs:
