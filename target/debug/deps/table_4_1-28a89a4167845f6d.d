/root/repo/target/debug/deps/table_4_1-28a89a4167845f6d.d: crates/bench/src/bin/table_4_1.rs Cargo.toml

/root/repo/target/debug/deps/libtable_4_1-28a89a4167845f6d.rmeta: crates/bench/src/bin/table_4_1.rs Cargo.toml

crates/bench/src/bin/table_4_1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
