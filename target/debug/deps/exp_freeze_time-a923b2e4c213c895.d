/root/repo/target/debug/deps/exp_freeze_time-a923b2e4c213c895.d: crates/bench/src/bin/exp_freeze_time.rs

/root/repo/target/debug/deps/exp_freeze_time-a923b2e4c213c895: crates/bench/src/bin/exp_freeze_time.rs

crates/bench/src/bin/exp_freeze_time.rs:
