/root/repo/target/debug/deps/v_system-cdea02741d71375e.d: src/lib.rs

/root/repo/target/debug/deps/v_system-cdea02741d71375e: src/lib.rs

src/lib.rs:
