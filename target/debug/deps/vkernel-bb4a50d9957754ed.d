/root/repo/target/debug/deps/vkernel-bb4a50d9957754ed.d: crates/kernel/src/lib.rs crates/kernel/src/binding.rs crates/kernel/src/ids.rs crates/kernel/src/kernel.rs crates/kernel/src/logical_host.rs crates/kernel/src/packet.rs crates/kernel/src/process.rs crates/kernel/src/testkit.rs crates/kernel/src/transfer.rs

/root/repo/target/debug/deps/libvkernel-bb4a50d9957754ed.rlib: crates/kernel/src/lib.rs crates/kernel/src/binding.rs crates/kernel/src/ids.rs crates/kernel/src/kernel.rs crates/kernel/src/logical_host.rs crates/kernel/src/packet.rs crates/kernel/src/process.rs crates/kernel/src/testkit.rs crates/kernel/src/transfer.rs

/root/repo/target/debug/deps/libvkernel-bb4a50d9957754ed.rmeta: crates/kernel/src/lib.rs crates/kernel/src/binding.rs crates/kernel/src/ids.rs crates/kernel/src/kernel.rs crates/kernel/src/logical_host.rs crates/kernel/src/packet.rs crates/kernel/src/process.rs crates/kernel/src/testkit.rs crates/kernel/src/transfer.rs

crates/kernel/src/lib.rs:
crates/kernel/src/binding.rs:
crates/kernel/src/ids.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/logical_host.rs:
crates/kernel/src/packet.rs:
crates/kernel/src/process.rs:
crates/kernel/src/testkit.rs:
crates/kernel/src/transfer.rs:
