/root/repo/target/debug/deps/abl_forwarding-781967dac3fb045f.d: crates/bench/src/bin/abl_forwarding.rs Cargo.toml

/root/repo/target/debug/deps/libabl_forwarding-781967dac3fb045f.rmeta: crates/bench/src/bin/abl_forwarding.rs Cargo.toml

crates/bench/src/bin/abl_forwarding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
