/root/repo/target/debug/deps/exp_vm_flush-9427c6b599e86bda.d: crates/bench/src/bin/exp_vm_flush.rs

/root/repo/target/debug/deps/exp_vm_flush-9427c6b599e86bda: crates/bench/src/bin/exp_vm_flush.rs

crates/bench/src/bin/exp_vm_flush.rs:
