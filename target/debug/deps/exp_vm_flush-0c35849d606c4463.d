/root/repo/target/debug/deps/exp_vm_flush-0c35849d606c4463.d: crates/bench/src/bin/exp_vm_flush.rs

/root/repo/target/debug/deps/exp_vm_flush-0c35849d606c4463: crates/bench/src/bin/exp_vm_flush.rs

crates/bench/src/bin/exp_vm_flush.rs:
