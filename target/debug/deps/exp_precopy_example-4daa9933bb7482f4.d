/root/repo/target/debug/deps/exp_precopy_example-4daa9933bb7482f4.d: crates/bench/src/bin/exp_precopy_example.rs

/root/repo/target/debug/deps/exp_precopy_example-4daa9933bb7482f4: crates/bench/src/bin/exp_precopy_example.rs

crates/bench/src/bin/exp_precopy_example.rs:
