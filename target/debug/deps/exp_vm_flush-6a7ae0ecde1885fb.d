/root/repo/target/debug/deps/exp_vm_flush-6a7ae0ecde1885fb.d: crates/bench/src/bin/exp_vm_flush.rs Cargo.toml

/root/repo/target/debug/deps/libexp_vm_flush-6a7ae0ecde1885fb.rmeta: crates/bench/src/bin/exp_vm_flush.rs Cargo.toml

crates/bench/src/bin/exp_vm_flush.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
