/root/repo/target/debug/deps/abl_packet_loss-5fcff67cd377b6c3.d: crates/bench/src/bin/abl_packet_loss.rs Cargo.toml

/root/repo/target/debug/deps/libabl_packet_loss-5fcff67cd377b6c3.rmeta: crates/bench/src/bin/abl_packet_loss.rs Cargo.toml

crates/bench/src/bin/abl_packet_loss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
