/root/repo/target/debug/deps/vcore-cb132e53b5183f19.d: crates/core/src/lib.rs crates/core/src/migration.rs crates/core/src/remote_exec.rs crates/core/src/report.rs crates/core/src/residual.rs

/root/repo/target/debug/deps/libvcore-cb132e53b5183f19.rlib: crates/core/src/lib.rs crates/core/src/migration.rs crates/core/src/remote_exec.rs crates/core/src/report.rs crates/core/src/residual.rs

/root/repo/target/debug/deps/libvcore-cb132e53b5183f19.rmeta: crates/core/src/lib.rs crates/core/src/migration.rs crates/core/src/remote_exec.rs crates/core/src/report.rs crates/core/src/residual.rs

crates/core/src/lib.rs:
crates/core/src/migration.rs:
crates/core/src/remote_exec.rs:
crates/core/src/report.rs:
crates/core/src/residual.rs:
