/root/repo/target/debug/deps/vservices-732a6ebe7cdd5018.d: crates/services/src/lib.rs crates/services/src/display.rs crates/services/src/env.rs crates/services/src/file_server.rs crates/services/src/msg.rs crates/services/src/program_manager.rs crates/services/src/service.rs

/root/repo/target/debug/deps/libvservices-732a6ebe7cdd5018.rlib: crates/services/src/lib.rs crates/services/src/display.rs crates/services/src/env.rs crates/services/src/file_server.rs crates/services/src/msg.rs crates/services/src/program_manager.rs crates/services/src/service.rs

/root/repo/target/debug/deps/libvservices-732a6ebe7cdd5018.rmeta: crates/services/src/lib.rs crates/services/src/display.rs crates/services/src/env.rs crates/services/src/file_server.rs crates/services/src/msg.rs crates/services/src/program_manager.rs crates/services/src/service.rs

crates/services/src/lib.rs:
crates/services/src/display.rs:
crates/services/src/env.rs:
crates/services/src/file_server.rs:
crates/services/src/msg.rs:
crates/services/src/program_manager.rs:
crates/services/src/service.rs:
