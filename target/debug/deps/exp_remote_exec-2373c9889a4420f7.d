/root/repo/target/debug/deps/exp_remote_exec-2373c9889a4420f7.d: crates/bench/src/bin/exp_remote_exec.rs

/root/repo/target/debug/deps/exp_remote_exec-2373c9889a4420f7: crates/bench/src/bin/exp_remote_exec.rs

crates/bench/src/bin/exp_remote_exec.rs:
