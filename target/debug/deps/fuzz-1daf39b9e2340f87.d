/root/repo/target/debug/deps/fuzz-1daf39b9e2340f87.d: crates/kernel/tests/fuzz.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz-1daf39b9e2340f87.rmeta: crates/kernel/tests/fuzz.rs Cargo.toml

crates/kernel/tests/fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
