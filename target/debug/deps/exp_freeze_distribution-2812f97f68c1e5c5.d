/root/repo/target/debug/deps/exp_freeze_distribution-2812f97f68c1e5c5.d: crates/bench/src/bin/exp_freeze_distribution.rs Cargo.toml

/root/repo/target/debug/deps/libexp_freeze_distribution-2812f97f68c1e5c5.rmeta: crates/bench/src/bin/exp_freeze_distribution.rs Cargo.toml

crates/bench/src/bin/exp_freeze_distribution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
