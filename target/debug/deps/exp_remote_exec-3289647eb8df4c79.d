/root/repo/target/debug/deps/exp_remote_exec-3289647eb8df4c79.d: crates/bench/src/bin/exp_remote_exec.rs

/root/repo/target/debug/deps/exp_remote_exec-3289647eb8df4c79: crates/bench/src/bin/exp_remote_exec.rs

crates/bench/src/bin/exp_remote_exec.rs:
