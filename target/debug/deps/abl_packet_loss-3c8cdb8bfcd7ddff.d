/root/repo/target/debug/deps/abl_packet_loss-3c8cdb8bfcd7ddff.d: crates/bench/src/bin/abl_packet_loss.rs

/root/repo/target/debug/deps/abl_packet_loss-3c8cdb8bfcd7ddff: crates/bench/src/bin/abl_packet_loss.rs

crates/bench/src/bin/abl_packet_loss.rs:
