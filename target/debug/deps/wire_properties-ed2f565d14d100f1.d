/root/repo/target/debug/deps/wire_properties-ed2f565d14d100f1.d: crates/net/tests/wire_properties.rs

/root/repo/target/debug/deps/wire_properties-ed2f565d14d100f1: crates/net/tests/wire_properties.rs

crates/net/tests/wire_properties.rs:
