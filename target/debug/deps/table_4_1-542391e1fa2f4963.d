/root/repo/target/debug/deps/table_4_1-542391e1fa2f4963.d: crates/bench/src/bin/table_4_1.rs

/root/repo/target/debug/deps/table_4_1-542391e1fa2f4963: crates/bench/src/bin/table_4_1.rs

crates/bench/src/bin/table_4_1.rs:
