/root/repo/target/debug/deps/abl_stop_policy-68b85fd262fa2b66.d: crates/bench/src/bin/abl_stop_policy.rs Cargo.toml

/root/repo/target/debug/deps/libabl_stop_policy-68b85fd262fa2b66.rmeta: crates/bench/src/bin/abl_stop_policy.rs Cargo.toml

crates/bench/src/bin/abl_stop_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
