/root/repo/target/debug/deps/vbench-8495a1b4b37047c1.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvbench-8495a1b4b37047c1.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
