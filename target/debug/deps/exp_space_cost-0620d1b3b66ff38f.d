/root/repo/target/debug/deps/exp_space_cost-0620d1b3b66ff38f.d: crates/bench/src/bin/exp_space_cost.rs Cargo.toml

/root/repo/target/debug/deps/libexp_space_cost-0620d1b3b66ff38f.rmeta: crates/bench/src/bin/exp_space_cost.rs Cargo.toml

crates/bench/src/bin/exp_space_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
