/root/repo/target/debug/deps/abl_selection-16f8a588f10a1c76.d: crates/bench/src/bin/abl_selection.rs

/root/repo/target/debug/deps/abl_selection-16f8a588f10a1c76: crates/bench/src/bin/abl_selection.rs

crates/bench/src/bin/abl_selection.rs:
