/root/repo/target/debug/deps/exp_freeze_time-cd378f8d18bfad55.d: crates/bench/src/bin/exp_freeze_time.rs

/root/repo/target/debug/deps/exp_freeze_time-cd378f8d18bfad55: crates/bench/src/bin/exp_freeze_time.rs

crates/bench/src/bin/exp_freeze_time.rs:
