/root/repo/target/debug/deps/exp_remote_exec-4c6641b00f3c576e.d: crates/bench/src/bin/exp_remote_exec.rs Cargo.toml

/root/repo/target/debug/deps/libexp_remote_exec-4c6641b00f3c576e.rmeta: crates/bench/src/bin/exp_remote_exec.rs Cargo.toml

crates/bench/src/bin/exp_remote_exec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
