/root/repo/target/debug/deps/wire_properties-c10e57e0e32e043d.d: crates/net/tests/wire_properties.rs Cargo.toml

/root/repo/target/debug/deps/libwire_properties-c10e57e0e32e043d.rmeta: crates/net/tests/wire_properties.rs Cargo.toml

crates/net/tests/wire_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
