/root/repo/target/debug/deps/dirty_model-92f9e38167c02212.d: crates/bench/benches/dirty_model.rs Cargo.toml

/root/repo/target/debug/deps/libdirty_model-92f9e38167c02212.rmeta: crates/bench/benches/dirty_model.rs Cargo.toml

crates/bench/benches/dirty_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
