/root/repo/target/debug/deps/abl_stop_policy-e01ec7304c50cd99.d: crates/bench/src/bin/abl_stop_policy.rs

/root/repo/target/debug/deps/abl_stop_policy-e01ec7304c50cd99: crates/bench/src/bin/abl_stop_policy.rs

crates/bench/src/bin/abl_stop_policy.rs:
