/root/repo/target/debug/deps/abl_packet_loss-6d7bcc8b714c4d2d.d: crates/bench/src/bin/abl_packet_loss.rs

/root/repo/target/debug/deps/abl_packet_loss-6d7bcc8b714c4d2d: crates/bench/src/bin/abl_packet_loss.rs

crates/bench/src/bin/abl_packet_loss.rs:
