/root/repo/target/debug/deps/vcore-e15abcd9b63796ee.d: crates/core/src/lib.rs crates/core/src/migration.rs crates/core/src/remote_exec.rs crates/core/src/report.rs crates/core/src/residual.rs Cargo.toml

/root/repo/target/debug/deps/libvcore-e15abcd9b63796ee.rmeta: crates/core/src/lib.rs crates/core/src/migration.rs crates/core/src/remote_exec.rs crates/core/src/report.rs crates/core/src/residual.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/migration.rs:
crates/core/src/remote_exec.rs:
crates/core/src/report.rs:
crates/core/src/residual.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
