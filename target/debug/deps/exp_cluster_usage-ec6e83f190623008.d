/root/repo/target/debug/deps/exp_cluster_usage-ec6e83f190623008.d: crates/bench/src/bin/exp_cluster_usage.rs

/root/repo/target/debug/deps/exp_cluster_usage-ec6e83f190623008: crates/bench/src/bin/exp_cluster_usage.rs

crates/bench/src/bin/exp_cluster_usage.rs:
