/root/repo/target/debug/deps/vkernel-45518889f78b5936.d: crates/kernel/src/lib.rs crates/kernel/src/binding.rs crates/kernel/src/ids.rs crates/kernel/src/kernel.rs crates/kernel/src/logical_host.rs crates/kernel/src/packet.rs crates/kernel/src/process.rs crates/kernel/src/testkit.rs crates/kernel/src/transfer.rs Cargo.toml

/root/repo/target/debug/deps/libvkernel-45518889f78b5936.rmeta: crates/kernel/src/lib.rs crates/kernel/src/binding.rs crates/kernel/src/ids.rs crates/kernel/src/kernel.rs crates/kernel/src/logical_host.rs crates/kernel/src/packet.rs crates/kernel/src/process.rs crates/kernel/src/testkit.rs crates/kernel/src/transfer.rs Cargo.toml

crates/kernel/src/lib.rs:
crates/kernel/src/binding.rs:
crates/kernel/src/ids.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/logical_host.rs:
crates/kernel/src/packet.rs:
crates/kernel/src/process.rs:
crates/kernel/src/testkit.rs:
crates/kernel/src/transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
