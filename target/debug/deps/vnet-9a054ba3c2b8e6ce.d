/root/repo/target/debug/deps/vnet-9a054ba3c2b8e6ce.d: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/ethernet.rs crates/net/src/frame.rs crates/net/src/loss.rs

/root/repo/target/debug/deps/libvnet-9a054ba3c2b8e6ce.rlib: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/ethernet.rs crates/net/src/frame.rs crates/net/src/loss.rs

/root/repo/target/debug/deps/libvnet-9a054ba3c2b8e6ce.rmeta: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/ethernet.rs crates/net/src/frame.rs crates/net/src/loss.rs

crates/net/src/lib.rs:
crates/net/src/addr.rs:
crates/net/src/ethernet.rs:
crates/net/src/frame.rs:
crates/net/src/loss.rs:
