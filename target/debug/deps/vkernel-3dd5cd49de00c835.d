/root/repo/target/debug/deps/vkernel-3dd5cd49de00c835.d: crates/kernel/src/lib.rs crates/kernel/src/binding.rs crates/kernel/src/ids.rs crates/kernel/src/kernel.rs crates/kernel/src/logical_host.rs crates/kernel/src/packet.rs crates/kernel/src/process.rs crates/kernel/src/testkit.rs crates/kernel/src/transfer.rs

/root/repo/target/debug/deps/vkernel-3dd5cd49de00c835: crates/kernel/src/lib.rs crates/kernel/src/binding.rs crates/kernel/src/ids.rs crates/kernel/src/kernel.rs crates/kernel/src/logical_host.rs crates/kernel/src/packet.rs crates/kernel/src/process.rs crates/kernel/src/testkit.rs crates/kernel/src/transfer.rs

crates/kernel/src/lib.rs:
crates/kernel/src/binding.rs:
crates/kernel/src/ids.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/logical_host.rs:
crates/kernel/src/packet.rs:
crates/kernel/src/process.rs:
crates/kernel/src/testkit.rs:
crates/kernel/src/transfer.rs:
