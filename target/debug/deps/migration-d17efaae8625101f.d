/root/repo/target/debug/deps/migration-d17efaae8625101f.d: crates/bench/benches/migration.rs Cargo.toml

/root/repo/target/debug/deps/libmigration-d17efaae8625101f.rmeta: crates/bench/benches/migration.rs Cargo.toml

crates/bench/benches/migration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
