/root/repo/target/debug/deps/exp_copy_costs-31a15b76a038eafc.d: crates/bench/src/bin/exp_copy_costs.rs Cargo.toml

/root/repo/target/debug/deps/libexp_copy_costs-31a15b76a038eafc.rmeta: crates/bench/src/bin/exp_copy_costs.rs Cargo.toml

crates/bench/src/bin/exp_copy_costs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
