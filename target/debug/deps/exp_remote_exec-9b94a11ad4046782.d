/root/repo/target/debug/deps/exp_remote_exec-9b94a11ad4046782.d: crates/bench/src/bin/exp_remote_exec.rs Cargo.toml

/root/repo/target/debug/deps/libexp_remote_exec-9b94a11ad4046782.rmeta: crates/bench/src/bin/exp_remote_exec.rs Cargo.toml

crates/bench/src/bin/exp_remote_exec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
