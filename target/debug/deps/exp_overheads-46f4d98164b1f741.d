/root/repo/target/debug/deps/exp_overheads-46f4d98164b1f741.d: crates/bench/src/bin/exp_overheads.rs Cargo.toml

/root/repo/target/debug/deps/libexp_overheads-46f4d98164b1f741.rmeta: crates/bench/src/bin/exp_overheads.rs Cargo.toml

crates/bench/src/bin/exp_overheads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
