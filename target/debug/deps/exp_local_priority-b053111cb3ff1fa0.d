/root/repo/target/debug/deps/exp_local_priority-b053111cb3ff1fa0.d: crates/bench/src/bin/exp_local_priority.rs

/root/repo/target/debug/deps/exp_local_priority-b053111cb3ff1fa0: crates/bench/src/bin/exp_local_priority.rs

crates/bench/src/bin/exp_local_priority.rs:
