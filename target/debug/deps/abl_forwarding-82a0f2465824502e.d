/root/repo/target/debug/deps/abl_forwarding-82a0f2465824502e.d: crates/bench/src/bin/abl_forwarding.rs

/root/repo/target/debug/deps/abl_forwarding-82a0f2465824502e: crates/bench/src/bin/abl_forwarding.rs

crates/bench/src/bin/abl_forwarding.rs:
