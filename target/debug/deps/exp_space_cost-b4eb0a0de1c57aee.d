/root/repo/target/debug/deps/exp_space_cost-b4eb0a0de1c57aee.d: crates/bench/src/bin/exp_space_cost.rs

/root/repo/target/debug/deps/exp_space_cost-b4eb0a0de1c57aee: crates/bench/src/bin/exp_space_cost.rs

crates/bench/src/bin/exp_space_cost.rs:
