/root/repo/target/debug/deps/exp_precopy_example-3789b431fc5a58bd.d: crates/bench/src/bin/exp_precopy_example.rs Cargo.toml

/root/repo/target/debug/deps/libexp_precopy_example-3789b431fc5a58bd.rmeta: crates/bench/src/bin/exp_precopy_example.rs Cargo.toml

crates/bench/src/bin/exp_precopy_example.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
