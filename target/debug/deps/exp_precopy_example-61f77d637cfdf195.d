/root/repo/target/debug/deps/exp_precopy_example-61f77d637cfdf195.d: crates/bench/src/bin/exp_precopy_example.rs

/root/repo/target/debug/deps/exp_precopy_example-61f77d637cfdf195: crates/bench/src/bin/exp_precopy_example.rs

crates/bench/src/bin/exp_precopy_example.rs:
