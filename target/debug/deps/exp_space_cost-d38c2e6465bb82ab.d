/root/repo/target/debug/deps/exp_space_cost-d38c2e6465bb82ab.d: crates/bench/src/bin/exp_space_cost.rs

/root/repo/target/debug/deps/exp_space_cost-d38c2e6465bb82ab: crates/bench/src/bin/exp_space_cost.rs

crates/bench/src/bin/exp_space_cost.rs:
