/root/repo/target/debug/deps/vbench-c7356bf6277bd1a1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/vbench-c7356bf6277bd1a1: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
