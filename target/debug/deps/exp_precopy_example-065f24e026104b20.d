/root/repo/target/debug/deps/exp_precopy_example-065f24e026104b20.d: crates/bench/src/bin/exp_precopy_example.rs Cargo.toml

/root/repo/target/debug/deps/libexp_precopy_example-065f24e026104b20.rmeta: crates/bench/src/bin/exp_precopy_example.rs Cargo.toml

crates/bench/src/bin/exp_precopy_example.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
