/root/repo/target/debug/deps/properties-abfee98c5f6409ae.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-abfee98c5f6409ae.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
