/root/repo/target/debug/deps/vcluster-77ffe52be5b460fe.d: crates/cluster/src/lib.rs crates/cluster/src/runtime.rs crates/cluster/src/script.rs Cargo.toml

/root/repo/target/debug/deps/libvcluster-77ffe52be5b460fe.rmeta: crates/cluster/src/lib.rs crates/cluster/src/runtime.rs crates/cluster/src/script.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/runtime.rs:
crates/cluster/src/script.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
