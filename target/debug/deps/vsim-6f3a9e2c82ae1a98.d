/root/repo/target/debug/deps/vsim-6f3a9e2c82ae1a98.d: crates/sim/src/lib.rs crates/sim/src/calib.rs crates/sim/src/engine.rs crates/sim/src/json.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libvsim-6f3a9e2c82ae1a98.rlib: crates/sim/src/lib.rs crates/sim/src/calib.rs crates/sim/src/engine.rs crates/sim/src/json.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libvsim-6f3a9e2c82ae1a98.rmeta: crates/sim/src/lib.rs crates/sim/src/calib.rs crates/sim/src/engine.rs crates/sim/src/json.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/calib.rs:
crates/sim/src/engine.rs:
crates/sim/src/json.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
