/root/repo/target/debug/deps/engine-8d6aaef9b0c9f486.d: crates/bench/benches/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-8d6aaef9b0c9f486.rmeta: crates/bench/benches/engine.rs Cargo.toml

crates/bench/benches/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
