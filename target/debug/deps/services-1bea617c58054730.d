/root/repo/target/debug/deps/services-1bea617c58054730.d: crates/services/tests/services.rs

/root/repo/target/debug/deps/services-1bea617c58054730: crates/services/tests/services.rs

crates/services/tests/services.rs:
