/root/repo/target/debug/deps/exp_overheads-ba5010f7701765b3.d: crates/bench/src/bin/exp_overheads.rs

/root/repo/target/debug/deps/exp_overheads-ba5010f7701765b3: crates/bench/src/bin/exp_overheads.rs

crates/bench/src/bin/exp_overheads.rs:
