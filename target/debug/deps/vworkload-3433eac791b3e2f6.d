/root/repo/target/debug/deps/vworkload-3433eac791b3e2f6.d: crates/workload/src/lib.rs crates/workload/src/profiles.rs crates/workload/src/program.rs crates/workload/src/user.rs

/root/repo/target/debug/deps/libvworkload-3433eac791b3e2f6.rlib: crates/workload/src/lib.rs crates/workload/src/profiles.rs crates/workload/src/program.rs crates/workload/src/user.rs

/root/repo/target/debug/deps/libvworkload-3433eac791b3e2f6.rmeta: crates/workload/src/lib.rs crates/workload/src/profiles.rs crates/workload/src/program.rs crates/workload/src/user.rs

crates/workload/src/lib.rs:
crates/workload/src/profiles.rs:
crates/workload/src/program.rs:
crates/workload/src/user.rs:
