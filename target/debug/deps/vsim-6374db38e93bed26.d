/root/repo/target/debug/deps/vsim-6374db38e93bed26.d: crates/sim/src/lib.rs crates/sim/src/calib.rs crates/sim/src/engine.rs crates/sim/src/json.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libvsim-6374db38e93bed26.rmeta: crates/sim/src/lib.rs crates/sim/src/calib.rs crates/sim/src/engine.rs crates/sim/src/json.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/calib.rs:
crates/sim/src/engine.rs:
crates/sim/src/json.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
