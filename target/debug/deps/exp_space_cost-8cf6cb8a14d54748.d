/root/repo/target/debug/deps/exp_space_cost-8cf6cb8a14d54748.d: crates/bench/src/bin/exp_space_cost.rs Cargo.toml

/root/repo/target/debug/deps/libexp_space_cost-8cf6cb8a14d54748.rmeta: crates/bench/src/bin/exp_space_cost.rs Cargo.toml

crates/bench/src/bin/exp_space_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
