/root/repo/target/debug/deps/exp_copy_costs-1e48d6c869e8e8bc.d: crates/bench/src/bin/exp_copy_costs.rs

/root/repo/target/debug/deps/exp_copy_costs-1e48d6c869e8e8bc: crates/bench/src/bin/exp_copy_costs.rs

crates/bench/src/bin/exp_copy_costs.rs:
