/root/repo/target/debug/deps/table_4_1-c898d5f1af3ec794.d: crates/bench/src/bin/table_4_1.rs Cargo.toml

/root/repo/target/debug/deps/libtable_4_1-c898d5f1af3ec794.rmeta: crates/bench/src/bin/table_4_1.rs Cargo.toml

crates/bench/src/bin/table_4_1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
