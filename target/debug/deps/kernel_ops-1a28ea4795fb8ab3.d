/root/repo/target/debug/deps/kernel_ops-1a28ea4795fb8ab3.d: crates/bench/benches/kernel_ops.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_ops-1a28ea4795fb8ab3.rmeta: crates/bench/benches/kernel_ops.rs Cargo.toml

crates/bench/benches/kernel_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
