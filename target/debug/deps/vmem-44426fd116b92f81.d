/root/repo/target/debug/deps/vmem-44426fd116b92f81.d: crates/mem/src/lib.rs crates/mem/src/bitset.rs crates/mem/src/space.rs crates/mem/src/wws.rs Cargo.toml

/root/repo/target/debug/deps/libvmem-44426fd116b92f81.rmeta: crates/mem/src/lib.rs crates/mem/src/bitset.rs crates/mem/src/space.rs crates/mem/src/wws.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/bitset.rs:
crates/mem/src/space.rs:
crates/mem/src/wws.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
