/root/repo/target/debug/deps/abl_forwarding-87f01a5c729be768.d: crates/bench/src/bin/abl_forwarding.rs

/root/repo/target/debug/deps/abl_forwarding-87f01a5c729be768: crates/bench/src/bin/abl_forwarding.rs

crates/bench/src/bin/abl_forwarding.rs:
