/root/repo/target/debug/deps/exp_overheads-f965b8f9c066803b.d: crates/bench/src/bin/exp_overheads.rs

/root/repo/target/debug/deps/exp_overheads-f965b8f9c066803b: crates/bench/src/bin/exp_overheads.rs

crates/bench/src/bin/exp_overheads.rs:
