/root/repo/target/debug/deps/exp_freeze_distribution-3cb52d7e3b95fe7b.d: crates/bench/src/bin/exp_freeze_distribution.rs

/root/repo/target/debug/deps/exp_freeze_distribution-3cb52d7e3b95fe7b: crates/bench/src/bin/exp_freeze_distribution.rs

crates/bench/src/bin/exp_freeze_distribution.rs:
