/root/repo/target/debug/deps/v_system-ceab322a72d0311b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libv_system-ceab322a72d0311b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
