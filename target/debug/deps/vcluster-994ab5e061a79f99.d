/root/repo/target/debug/deps/vcluster-994ab5e061a79f99.d: crates/cluster/src/lib.rs crates/cluster/src/runtime.rs crates/cluster/src/script.rs Cargo.toml

/root/repo/target/debug/deps/libvcluster-994ab5e061a79f99.rmeta: crates/cluster/src/lib.rs crates/cluster/src/runtime.rs crates/cluster/src/script.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/runtime.rs:
crates/cluster/src/script.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
