/root/repo/target/debug/deps/vservices-89b602f92fd902ad.d: crates/services/src/lib.rs crates/services/src/display.rs crates/services/src/env.rs crates/services/src/file_server.rs crates/services/src/msg.rs crates/services/src/program_manager.rs crates/services/src/service.rs Cargo.toml

/root/repo/target/debug/deps/libvservices-89b602f92fd902ad.rmeta: crates/services/src/lib.rs crates/services/src/display.rs crates/services/src/env.rs crates/services/src/file_server.rs crates/services/src/msg.rs crates/services/src/program_manager.rs crates/services/src/service.rs Cargo.toml

crates/services/src/lib.rs:
crates/services/src/display.rs:
crates/services/src/env.rs:
crates/services/src/file_server.rs:
crates/services/src/msg.rs:
crates/services/src/program_manager.rs:
crates/services/src/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
