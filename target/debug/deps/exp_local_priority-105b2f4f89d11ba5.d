/root/repo/target/debug/deps/exp_local_priority-105b2f4f89d11ba5.d: crates/bench/src/bin/exp_local_priority.rs

/root/repo/target/debug/deps/exp_local_priority-105b2f4f89d11ba5: crates/bench/src/bin/exp_local_priority.rs

crates/bench/src/bin/exp_local_priority.rs:
