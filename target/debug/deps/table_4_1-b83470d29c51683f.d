/root/repo/target/debug/deps/table_4_1-b83470d29c51683f.d: crates/bench/src/bin/table_4_1.rs

/root/repo/target/debug/deps/table_4_1-b83470d29c51683f: crates/bench/src/bin/table_4_1.rs

crates/bench/src/bin/table_4_1.rs:
