/root/repo/target/debug/deps/vnet-6b74bc09636fca1f.d: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/ethernet.rs crates/net/src/frame.rs crates/net/src/loss.rs

/root/repo/target/debug/deps/vnet-6b74bc09636fca1f: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/ethernet.rs crates/net/src/frame.rs crates/net/src/loss.rs

crates/net/src/lib.rs:
crates/net/src/addr.rs:
crates/net/src/ethernet.rs:
crates/net/src/frame.rs:
crates/net/src/loss.rs:
