/root/repo/target/release/deps/abl_selection-71efdc748419daa3.d: crates/bench/src/bin/abl_selection.rs

/root/repo/target/release/deps/abl_selection-71efdc748419daa3: crates/bench/src/bin/abl_selection.rs

crates/bench/src/bin/abl_selection.rs:
