/root/repo/target/release/deps/exp_cluster_usage-45bffcdd745410c9.d: crates/bench/src/bin/exp_cluster_usage.rs

/root/repo/target/release/deps/exp_cluster_usage-45bffcdd745410c9: crates/bench/src/bin/exp_cluster_usage.rs

crates/bench/src/bin/exp_cluster_usage.rs:
