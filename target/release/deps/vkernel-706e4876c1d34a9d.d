/root/repo/target/release/deps/vkernel-706e4876c1d34a9d.d: crates/kernel/src/lib.rs crates/kernel/src/binding.rs crates/kernel/src/ids.rs crates/kernel/src/kernel.rs crates/kernel/src/logical_host.rs crates/kernel/src/packet.rs crates/kernel/src/process.rs crates/kernel/src/testkit.rs crates/kernel/src/transfer.rs

/root/repo/target/release/deps/libvkernel-706e4876c1d34a9d.rlib: crates/kernel/src/lib.rs crates/kernel/src/binding.rs crates/kernel/src/ids.rs crates/kernel/src/kernel.rs crates/kernel/src/logical_host.rs crates/kernel/src/packet.rs crates/kernel/src/process.rs crates/kernel/src/testkit.rs crates/kernel/src/transfer.rs

/root/repo/target/release/deps/libvkernel-706e4876c1d34a9d.rmeta: crates/kernel/src/lib.rs crates/kernel/src/binding.rs crates/kernel/src/ids.rs crates/kernel/src/kernel.rs crates/kernel/src/logical_host.rs crates/kernel/src/packet.rs crates/kernel/src/process.rs crates/kernel/src/testkit.rs crates/kernel/src/transfer.rs

crates/kernel/src/lib.rs:
crates/kernel/src/binding.rs:
crates/kernel/src/ids.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/logical_host.rs:
crates/kernel/src/packet.rs:
crates/kernel/src/process.rs:
crates/kernel/src/testkit.rs:
crates/kernel/src/transfer.rs:
