/root/repo/target/release/deps/abl_stop_policy-5e60134ab6f3ba1e.d: crates/bench/src/bin/abl_stop_policy.rs

/root/repo/target/release/deps/abl_stop_policy-5e60134ab6f3ba1e: crates/bench/src/bin/abl_stop_policy.rs

crates/bench/src/bin/abl_stop_policy.rs:
