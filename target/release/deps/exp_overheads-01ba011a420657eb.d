/root/repo/target/release/deps/exp_overheads-01ba011a420657eb.d: crates/bench/src/bin/exp_overheads.rs

/root/repo/target/release/deps/exp_overheads-01ba011a420657eb: crates/bench/src/bin/exp_overheads.rs

crates/bench/src/bin/exp_overheads.rs:
