/root/repo/target/release/deps/vcluster-2796c0a093cfd2e9.d: crates/cluster/src/lib.rs crates/cluster/src/runtime.rs crates/cluster/src/script.rs

/root/repo/target/release/deps/libvcluster-2796c0a093cfd2e9.rlib: crates/cluster/src/lib.rs crates/cluster/src/runtime.rs crates/cluster/src/script.rs

/root/repo/target/release/deps/libvcluster-2796c0a093cfd2e9.rmeta: crates/cluster/src/lib.rs crates/cluster/src/runtime.rs crates/cluster/src/script.rs

crates/cluster/src/lib.rs:
crates/cluster/src/runtime.rs:
crates/cluster/src/script.rs:
