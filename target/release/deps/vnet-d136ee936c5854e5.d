/root/repo/target/release/deps/vnet-d136ee936c5854e5.d: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/ethernet.rs crates/net/src/frame.rs crates/net/src/loss.rs

/root/repo/target/release/deps/libvnet-d136ee936c5854e5.rlib: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/ethernet.rs crates/net/src/frame.rs crates/net/src/loss.rs

/root/repo/target/release/deps/libvnet-d136ee936c5854e5.rmeta: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/ethernet.rs crates/net/src/frame.rs crates/net/src/loss.rs

crates/net/src/lib.rs:
crates/net/src/addr.rs:
crates/net/src/ethernet.rs:
crates/net/src/frame.rs:
crates/net/src/loss.rs:
