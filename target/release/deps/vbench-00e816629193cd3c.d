/root/repo/target/release/deps/vbench-00e816629193cd3c.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libvbench-00e816629193cd3c.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libvbench-00e816629193cd3c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
