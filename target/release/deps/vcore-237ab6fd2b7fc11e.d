/root/repo/target/release/deps/vcore-237ab6fd2b7fc11e.d: crates/core/src/lib.rs crates/core/src/migration.rs crates/core/src/remote_exec.rs crates/core/src/report.rs crates/core/src/residual.rs

/root/repo/target/release/deps/libvcore-237ab6fd2b7fc11e.rlib: crates/core/src/lib.rs crates/core/src/migration.rs crates/core/src/remote_exec.rs crates/core/src/report.rs crates/core/src/residual.rs

/root/repo/target/release/deps/libvcore-237ab6fd2b7fc11e.rmeta: crates/core/src/lib.rs crates/core/src/migration.rs crates/core/src/remote_exec.rs crates/core/src/report.rs crates/core/src/residual.rs

crates/core/src/lib.rs:
crates/core/src/migration.rs:
crates/core/src/remote_exec.rs:
crates/core/src/report.rs:
crates/core/src/residual.rs:
