/root/repo/target/release/deps/exp_copy_costs-ab6ae70297b52e66.d: crates/bench/src/bin/exp_copy_costs.rs

/root/repo/target/release/deps/exp_copy_costs-ab6ae70297b52e66: crates/bench/src/bin/exp_copy_costs.rs

crates/bench/src/bin/exp_copy_costs.rs:
