/root/repo/target/release/deps/exp_precopy_example-14cd9b2346398b84.d: crates/bench/src/bin/exp_precopy_example.rs

/root/repo/target/release/deps/exp_precopy_example-14cd9b2346398b84: crates/bench/src/bin/exp_precopy_example.rs

crates/bench/src/bin/exp_precopy_example.rs:
