/root/repo/target/release/deps/vworkload-a036ee5058e3a4b1.d: crates/workload/src/lib.rs crates/workload/src/profiles.rs crates/workload/src/program.rs crates/workload/src/user.rs

/root/repo/target/release/deps/libvworkload-a036ee5058e3a4b1.rlib: crates/workload/src/lib.rs crates/workload/src/profiles.rs crates/workload/src/program.rs crates/workload/src/user.rs

/root/repo/target/release/deps/libvworkload-a036ee5058e3a4b1.rmeta: crates/workload/src/lib.rs crates/workload/src/profiles.rs crates/workload/src/program.rs crates/workload/src/user.rs

crates/workload/src/lib.rs:
crates/workload/src/profiles.rs:
crates/workload/src/program.rs:
crates/workload/src/user.rs:
