/root/repo/target/release/deps/table_4_1-e1281bc80322b215.d: crates/bench/src/bin/table_4_1.rs

/root/repo/target/release/deps/table_4_1-e1281bc80322b215: crates/bench/src/bin/table_4_1.rs

crates/bench/src/bin/table_4_1.rs:
