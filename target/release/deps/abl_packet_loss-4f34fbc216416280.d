/root/repo/target/release/deps/abl_packet_loss-4f34fbc216416280.d: crates/bench/src/bin/abl_packet_loss.rs

/root/repo/target/release/deps/abl_packet_loss-4f34fbc216416280: crates/bench/src/bin/abl_packet_loss.rs

crates/bench/src/bin/abl_packet_loss.rs:
