/root/repo/target/release/deps/exp_remote_exec-75c1fcd666cda39c.d: crates/bench/src/bin/exp_remote_exec.rs

/root/repo/target/release/deps/exp_remote_exec-75c1fcd666cda39c: crates/bench/src/bin/exp_remote_exec.rs

crates/bench/src/bin/exp_remote_exec.rs:
