/root/repo/target/release/deps/v_system-276212614c9fc66b.d: src/lib.rs

/root/repo/target/release/deps/libv_system-276212614c9fc66b.rlib: src/lib.rs

/root/repo/target/release/deps/libv_system-276212614c9fc66b.rmeta: src/lib.rs

src/lib.rs:
