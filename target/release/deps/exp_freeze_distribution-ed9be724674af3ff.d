/root/repo/target/release/deps/exp_freeze_distribution-ed9be724674af3ff.d: crates/bench/src/bin/exp_freeze_distribution.rs

/root/repo/target/release/deps/exp_freeze_distribution-ed9be724674af3ff: crates/bench/src/bin/exp_freeze_distribution.rs

crates/bench/src/bin/exp_freeze_distribution.rs:
