/root/repo/target/release/deps/exp_local_priority-6359d96d3d2d5a1e.d: crates/bench/src/bin/exp_local_priority.rs

/root/repo/target/release/deps/exp_local_priority-6359d96d3d2d5a1e: crates/bench/src/bin/exp_local_priority.rs

crates/bench/src/bin/exp_local_priority.rs:
