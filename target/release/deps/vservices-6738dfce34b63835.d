/root/repo/target/release/deps/vservices-6738dfce34b63835.d: crates/services/src/lib.rs crates/services/src/display.rs crates/services/src/env.rs crates/services/src/file_server.rs crates/services/src/msg.rs crates/services/src/program_manager.rs crates/services/src/service.rs

/root/repo/target/release/deps/libvservices-6738dfce34b63835.rlib: crates/services/src/lib.rs crates/services/src/display.rs crates/services/src/env.rs crates/services/src/file_server.rs crates/services/src/msg.rs crates/services/src/program_manager.rs crates/services/src/service.rs

/root/repo/target/release/deps/libvservices-6738dfce34b63835.rmeta: crates/services/src/lib.rs crates/services/src/display.rs crates/services/src/env.rs crates/services/src/file_server.rs crates/services/src/msg.rs crates/services/src/program_manager.rs crates/services/src/service.rs

crates/services/src/lib.rs:
crates/services/src/display.rs:
crates/services/src/env.rs:
crates/services/src/file_server.rs:
crates/services/src/msg.rs:
crates/services/src/program_manager.rs:
crates/services/src/service.rs:
