/root/repo/target/release/deps/exp_space_cost-41157ef130ea3a6e.d: crates/bench/src/bin/exp_space_cost.rs

/root/repo/target/release/deps/exp_space_cost-41157ef130ea3a6e: crates/bench/src/bin/exp_space_cost.rs

crates/bench/src/bin/exp_space_cost.rs:
