/root/repo/target/release/deps/exp_vm_flush-26733aa3733f4793.d: crates/bench/src/bin/exp_vm_flush.rs

/root/repo/target/release/deps/exp_vm_flush-26733aa3733f4793: crates/bench/src/bin/exp_vm_flush.rs

crates/bench/src/bin/exp_vm_flush.rs:
