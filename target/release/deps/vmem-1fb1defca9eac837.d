/root/repo/target/release/deps/vmem-1fb1defca9eac837.d: crates/mem/src/lib.rs crates/mem/src/bitset.rs crates/mem/src/space.rs crates/mem/src/wws.rs

/root/repo/target/release/deps/libvmem-1fb1defca9eac837.rlib: crates/mem/src/lib.rs crates/mem/src/bitset.rs crates/mem/src/space.rs crates/mem/src/wws.rs

/root/repo/target/release/deps/libvmem-1fb1defca9eac837.rmeta: crates/mem/src/lib.rs crates/mem/src/bitset.rs crates/mem/src/space.rs crates/mem/src/wws.rs

crates/mem/src/lib.rs:
crates/mem/src/bitset.rs:
crates/mem/src/space.rs:
crates/mem/src/wws.rs:
