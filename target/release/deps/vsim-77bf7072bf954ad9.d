/root/repo/target/release/deps/vsim-77bf7072bf954ad9.d: crates/sim/src/lib.rs crates/sim/src/calib.rs crates/sim/src/engine.rs crates/sim/src/json.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libvsim-77bf7072bf954ad9.rlib: crates/sim/src/lib.rs crates/sim/src/calib.rs crates/sim/src/engine.rs crates/sim/src/json.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libvsim-77bf7072bf954ad9.rmeta: crates/sim/src/lib.rs crates/sim/src/calib.rs crates/sim/src/engine.rs crates/sim/src/json.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/calib.rs:
crates/sim/src/engine.rs:
crates/sim/src/json.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
