/root/repo/target/release/deps/abl_forwarding-d6fd741aa3102f33.d: crates/bench/src/bin/abl_forwarding.rs

/root/repo/target/release/deps/abl_forwarding-d6fd741aa3102f33: crates/bench/src/bin/abl_forwarding.rs

crates/bench/src/bin/abl_forwarding.rs:
