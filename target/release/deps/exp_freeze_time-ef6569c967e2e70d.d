/root/repo/target/release/deps/exp_freeze_time-ef6569c967e2e70d.d: crates/bench/src/bin/exp_freeze_time.rs

/root/repo/target/release/deps/exp_freeze_time-ef6569c967e2e70d: crates/bench/src/bin/exp_freeze_time.rs

crates/bench/src/bin/exp_freeze_time.rs:
