/root/repo/target/release/examples/quickstart-09db28f54a211c8c.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-09db28f54a211c8c: examples/quickstart.rs

examples/quickstart.rs:
