/root/repo/target/release/examples/preemptable_pool-694ccae1d0f34c5a.d: examples/preemptable_pool.rs

/root/repo/target/release/examples/preemptable_pool-694ccae1d0f34c5a: examples/preemptable_pool.rs

examples/preemptable_pool.rs:
