//! §2: "Facilities for terminating, suspending and debugging programs
//! work independent of whether the program is executing locally or
//! remotely."
//!
//! A long TeX run is offloaded to another workstation, suspended from the
//! user's machine (freezing its logical host in place, no CPU consumed),
//! inspected, resumed, and runs to completion.
//!
//! Run with: `cargo run --example suspend_resume`

use v_system::prelude::*;

fn main() {
    let mut cluster = Cluster::new(ClusterConfig {
        workstations: 3,
        loss: LossModel::None,
        ..ClusterConfig::default()
    });

    let row = profiles::row("tex").expect("known");
    let job = ProgramProfile::steady(
        "tex",
        profiles::layout_for("tex"),
        row.fit(),
        SimDuration::from_secs(40),
    );
    println!("ws1$ tex bigpaper.tex @ *");
    cluster.exec(1, job, ExecTarget::AnyIdle, Priority::GUEST);
    cluster.run_for(SimDuration::from_secs(10));
    let lh = cluster.exec_reports[0].lh.expect("created");
    let home = cluster.locate(lh).expect("running");
    let target = cluster.index_of(home);
    println!(
        "tex runs on {} ({} s of CPU so far)",
        cluster.stations[target].name,
        cluster.stations[target].programs[&lh]
            .behavior
            .stats()
            .cpu_micros as f64
            / 1e6
    );

    println!("\nws1$ suspendprog {lh}        (works across the network)");
    cluster.suspendprog(1, lh);
    cluster.run_for(SimDuration::from_secs(20));
    let frozen = cluster.stations[target]
        .kernel
        .logical_host(lh)
        .expect("resident")
        .is_frozen();
    let cpu_frozen = cluster.stations[target].programs[&lh]
        .behavior
        .stats()
        .cpu_micros;
    println!(
        "suspended: frozen={frozen}; CPU counter parked at {:.1} s",
        cpu_frozen as f64 / 1e6
    );
    cluster.run_for(SimDuration::from_secs(20));
    assert_eq!(
        cluster.stations[target].programs[&lh]
            .behavior
            .stats()
            .cpu_micros,
        cpu_frozen,
        "no CPU while suspended"
    );

    println!("\nws1$ resumeprog {lh}");
    cluster.resumeprog(1, lh);
    cluster.run_for(SimDuration::from_secs(120));
    println!(
        "resumed and finished: {} program(s) ran to completion",
        cluster.stats.programs_finished
    );
    assert_eq!(cluster.stats.programs_finished, 1);
}
