//! Quickstart: `program @ *`.
//!
//! Builds a small cluster, offloads a compile onto "some other lightly
//! loaded machine" (the paper's `@ *`), and prints the timing breakdown
//! §4.1 reports: host selection, environment setup, image load.
//!
//! Run with: `cargo run --example quickstart`

use v_system::prelude::*;

fn main() {
    let mut cluster = Cluster::new(ClusterConfig {
        workstations: 4,
        loss: LossModel::None,
        trace: TraceLevel::Info,
        ..ClusterConfig::default()
    });

    // The paper's parser pass: ~190 KB image, a heavy dirtier.
    let row = profiles::row("parser").expect("known program");
    let job = profiles::steady_profile(row);
    println!("ws1$ {} @ *", job.name);
    cluster
        .script()
        .exec(1)
        .profile(job)
        .target(ExecTarget::AnyIdle)
        .guest();
    cluster.run_for(SimDuration::from_secs(60));

    let r = cluster.exec_reports[0].clone();
    println!(
        "\nexecuted on {} ({})",
        r.chosen_name.as_deref().unwrap_or("?"),
        r.chosen_host.map(|h| h.to_string()).unwrap_or_default()
    );
    println!("  host selection : {}", r.selection_time);
    println!("  create (setup + load) : {}", r.creation_time);
    println!("  start : {}", r.start_time);
    println!("  total : {}", r.total_time);
    println!("  success : {}", r.success);

    // Let it run to completion.
    cluster.run_for(SimDuration::from_secs(30));
    println!(
        "\nprograms finished: {} (CPU went to {})",
        cluster.stats.programs_finished,
        r.chosen_name.as_deref().unwrap_or("?")
    );

    println!("\n--- metrics ---");
    let m = cluster.metrics_report();
    println!(
        "  IPC sends       : {}",
        m.counter_total(Subsystem::Kernel, "sends")
    );
    println!(
        "  frames on wire  : {}",
        m.counter_total(Subsystem::Net, "frames_sent")
    );
    println!(
        "  guest quanta    : {}",
        m.counter_total(Subsystem::Cluster, "quanta_guest")
    );

    println!("\n--- trace ---");
    for rec in cluster.trace().records() {
        println!("{rec}");
    }
}
