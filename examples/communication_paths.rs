//! Figure 2-1: communication paths between a program and the servers,
//! local and remote.
//!
//! A program started from ws1 but executing on ws2 talks to:
//!   * the *global* file server (network file server machine),
//!   * the display server of ws1 — the workstation the user sits at,
//!   * the program manager and kernel server of ws2 — the workstation it
//!     executes on, reached through well-known local groups.
//!
//! Everything goes through network-transparent IPC; the program's code is
//! identical to the local case. This example prints which server on which
//! machine handled each interaction.
//!
//! Run with: `cargo run --example communication_paths`

use v_system::prelude::*;

fn main() {
    let mut cluster = Cluster::new(ClusterConfig {
        workstations: 3,
        loss: LossModel::None,
        ..ClusterConfig::default()
    });
    cluster.file_server_mut().add_file("paper.tex", 48 * 1024);

    // A program that exercises every path: reads its input from the file
    // server, computes, writes output, and prints to the user's terminal.
    let row = profiles::row("tex").expect("known");
    let profile = ProgramProfile {
        name: "tex".into(),
        layout: profiles::layout_for("tex"),
        wws: row.fit(),
        phases: vec![
            Phase::FileRead {
                name: "paper.tex".into(),
                bytes: 48 * 1024,
                chunk: 8 * 1024,
            },
            Phase::Compute(SimDuration::from_secs(5)),
            Phase::Display { chars: 400 },
            Phase::FileWrite {
                name: "paper.dvi".into(),
                bytes: 96 * 1024,
                chunk: 8 * 1024,
            },
            Phase::Display { chars: 60 },
        ],
    };

    println!("ws1$ tex paper.tex @ ws2\n");
    cluster.exec(1, profile, ExecTarget::Named("ws2".into()), Priority::GUEST);
    cluster.run_for(SimDuration::from_secs(60));

    let r = &cluster.exec_reports[0];
    assert!(r.success);
    println!(
        "program ran on : {} ",
        r.chosen_name.as_deref().unwrap_or("?")
    );

    println!("\ncommunication paths exercised (Figure 2-1):");
    println!(
        "  program -> program manager [ws2]   : created/destroyed there ({} programs created)",
        cluster.stations[2].pm.stats().programs_created
    );
    println!(
        "  program -> file server [fileserver]: {} KB read, {} KB written",
        cluster.file_server().stats().bytes_read / 1024,
        cluster.file_server().stats().bytes_written / 1024,
    );
    println!(
        "  program -> display server [ws1]    : {} chars on the *user's* screen",
        cluster.stations[1].display.stats().chars
    );
    println!(
        "  program -> display server [ws2]    : {} chars (none — the frame buffer is ws1's)",
        cluster.stations[2].display.stats().chars
    );
    println!(
        "  image load fileserver -> ws2       : {} KB of program image",
        cluster.file_server().stats().image_bytes / 1024
    );

    let k2 = cluster.stations[2].kernel.stats();
    println!(
        "\nws2 kernel: {} deliveries, {} local-group lookups (kernel server / PM by (lh, index))",
        k2.deliveries, k2.group_lookups
    );
    assert_eq!(cluster.stations[2].display.stats().chars, 0);
    assert_eq!(cluster.stations[1].display.stats().chars, 460);
}
