//! §2: "truly distributed programs" — `cc68` as the paper describes it.
//!
//! The C compiler "consists of 5 separate subprograms: a preprocessor, a
//! parser front-end, an optimizer, an assembler, a linking loader, and a
//! control program" (§4.1). Here the control program runs each pass as a
//! subprogram placed by the `@ *` machinery on whatever host is idle, and
//! waits for it through the program manager's WaitProgram — reply-pending
//! packets carry the long wait, exactly the §3.1 machinery.
//!
//! Run with: `cargo run --example distributed_make`

use v_system::prelude::*;

fn main() {
    let mut cluster = Cluster::new(ClusterConfig {
        workstations: 5,
        loss: LossModel::None,
        ..ClusterConfig::default()
    });

    println!("ws1$ cc68 prog.c     (control program + 5 passes)\n");
    cluster.exec(
        1,
        profiles::cc68_pipeline(),
        ExecTarget::Named("ws1".into()),
        Priority::LOCAL,
    );
    cluster.run_for(SimDuration::from_secs(400));

    println!("programs finished : {}", cluster.stats.programs_finished);
    assert_eq!(cluster.stats.programs_finished, 6, "control + 5 passes");

    println!("\nwhere each pass ran:");
    for w in &cluster.stations {
        let created = w.pm.stats().programs_created;
        if created > 0 {
            println!("  {:<12} created {created} program(s)", w.name);
        }
    }

    let rp: u64 = cluster
        .stations
        .iter()
        .map(|w| w.kernel.stats().reply_pendings_sent)
        .sum();
    println!("\nreply-pending packets sent while the control program waited: {rp}");
    println!(
        "(the §3.1 'operation pending' machinery is what lets a V client\n\
         block on a long-running subprogram without timing out)"
    );
    assert!(rp > 0);
}
