//! The paper's headline scenario (§1, §4.3): idle workstations as a
//! preemptable "pool of processors".
//!
//! A user on ws1 farms a long simulation job out with `@ *`. It lands on
//! an idle workstation. Twenty seconds later that workstation's owner
//! sits down — and the job is migrated away within a couple of seconds,
//! without being restarted and without the owner noticing more than the
//! reclaim delay. The job keeps its process ids, its open state, and its
//! progress.
//!
//! Run with: `cargo run --example preemptable_pool`

use v_system::prelude::*;

fn main() {
    let mut cluster = Cluster::new(ClusterConfig {
        workstations: 5,
        loss: LossModel::None,
        evict_on_owner_return: true,
        trace: TraceLevel::Info,
        ..ClusterConfig::default()
    });

    // A simulation job "with non-trivial running time" (§4.3's main use).
    let job = profiles::simulation_profile(SimDuration::from_secs(300));
    println!("ws1$ simulate @ *");
    cluster.exec(1, job, ExecTarget::AnyIdle, Priority::GUEST);
    cluster.run_for(SimDuration::from_secs(20));

    let lh = cluster.exec_reports[0].lh.expect("job created");
    let first_home = cluster.locate(lh).expect("job resident");
    let owner_ws = cluster.index_of(first_home);
    println!(
        "\njob {lh} is computing on {} (owner away)",
        cluster.stations[owner_ws].name
    );

    // The owner returns...
    println!(
        "\n*** the owner of {} sits down ***",
        cluster.stations[owner_ws].name
    );
    cluster.script().after_ms(1).owner_active(owner_ws, true);
    cluster.run_for(SimDuration::from_secs(30));

    let report = cluster
        .migration_reports
        .first()
        .expect("eviction migration ran");
    let new_home = cluster.locate(lh).expect("job survived");
    println!("\njob {lh} migrated: {} -> {}", first_home, new_home);
    println!("  strategy         : {}", report.strategy);
    println!("  pre-copy rounds  : {}", report.iterations.len());
    for (i, it) in report.iterations.iter().enumerate() {
        println!(
            "    round {}: {} KB in {}",
            i + 1,
            it.bytes / 1024,
            it.duration
        );
    }
    println!("  residual (frozen): {} KB", report.residual_bytes / 1024);
    println!("  freeze time      : {}", report.freeze_time);
    println!("  total migration  : {}", report.total_time);
    println!(
        "  workstation reclaimed in {}",
        cluster.reclaim_times.first().expect("reclaim recorded")
    );

    // The job still finishes.
    cluster.run_for(SimDuration::from_secs(400));
    println!(
        "\njob finished: {} program(s) ran to completion, migrations: {}",
        cluster.stats.programs_finished,
        cluster.migration_reports.len()
    );
    assert_eq!(cluster.stats.programs_finished, 1);

    let m = cluster.metrics_report();
    println!(
        "guest CPU quanta harvested: {}",
        m.counter_total(Subsystem::Cluster, "quanta_guest")
    );
}
