//! §3.3: residual host dependencies.
//!
//! A program is *supposed* to keep its state in its address space or in
//! global servers (§6). This example violates the convention: the program
//! opens a scratch file on a *workstation-local* file server, then
//! migrates away. V's network-transparent IPC keeps the file reachable —
//! but the auditor flags the residual dependency, and when the old host
//! goes down, the dependent program's file I/O fails while a well-behaved
//! twin (using the global server) is unaffected.
//!
//! Run with: `cargo run --example residual_audit`

use v_system::prelude::*;
use vcore::residual;
use vservices::ExecEnv;

fn main() {
    let mut cluster = Cluster::new(ClusterConfig {
        workstations: 3,
        loss: LossModel::None,
        ..ClusterConfig::default()
    });

    // Install a local file server on ws2 — the kind of host-bound state
    // the paper's conventions forbid.
    let local_fs = cluster.add_local_file_server(2);
    cluster.stations[2]
        .fs
        .as_mut()
        .expect("just installed")
        .add_file("tmp/scratch", 8 * 1024);

    // A long-running job on ws2 that opens the *local* file and then
    // keeps computing (holding the handle).
    let profile = ProgramProfile {
        name: "sloppy-job".into(),
        layout: profiles::layout_for("optimizer"),
        wws: profiles::row("optimizer").expect("row").fit(),
        phases: vec![
            Phase::OpenAndHold {
                name: "tmp/scratch".into(),
            },
            Phase::Compute(SimDuration::from_secs(600)),
        ],
    };
    // Its environment points at the LOCAL server of ws2.
    let env = ExecEnv::standard(cluster.stations[1].display.pid(), local_fs);
    println!("ws1$ sloppy-job @ ws2   (env: fileserver = ws2-local!)");
    cluster.exec_with_env(
        2,
        profile,
        ExecTarget::Named("ws2".into()),
        Priority::GUEST,
        env,
    );
    cluster.run_for(SimDuration::from_secs(15));
    let lh = cluster.exec_reports[0].lh.expect("created");

    // Before migration: no residual dependency (program and file share a
    // host).
    let locate = |c: &Cluster, l: LogicalHostId| c.locate(l);
    {
        let deps = residual::audit_local_file_server(
            cluster.stations[2].fs.as_ref().expect("fs"),
            cluster.stations[2].host,
            |l| locate(&cluster, l),
        );
        println!(
            "\naudit before migration: {} residual dependencies",
            deps.len()
        );
    }

    // Migrate the job away.
    println!("\nws2$ migrateprog {lh}");
    cluster.migrateprog(2, lh, false);
    cluster.run_for(SimDuration::from_secs(30));
    let r = &cluster.migration_reports[0];
    assert!(r.success);
    println!(
        "migrated to {} (freeze {})",
        r.to_host.expect("target"),
        r.freeze_time
    );

    // Now the auditor flags it.
    let deps = residual::audit_local_file_server(
        cluster.stations[2].fs.as_ref().expect("fs"),
        cluster.stations[2].host,
        |l| locate(&cluster, l),
    );
    println!(
        "\naudit after migration: {} residual dependencies",
        deps.len()
    );
    for d in &deps {
        println!(
            "  {} (now on {:?}) still depends on {}: {}",
            d.pid,
            d.runs_on.map(|h| h.to_string()),
            d.depends_on,
            d.resource
        );
    }
    assert_eq!(deps.len(), 1, "the open local file is residual state");

    println!(
        "\n\"This use imposes a continued load on the original host and\n\
         results in failure of the program should the original host fail\n\
         or be rebooted.\" (§3.3) — the audit above is the detection\n\
         mechanism the paper lists as future work."
    );
}
