//! Exhaustive fault-point matrix soak.
//!
//! [`fault_points`] enumerates every (protocol step × party) combination
//! the runtime can resolve — the five-step migration protocol plus the
//! lease liveness subsystem. These tests drive every registered point ×
//! {crash, partition, corruption} × 16 seeds to quiescence and demand a
//! clean final audit, so coverage of the whole matrix is guaranteed by
//! construction: a new registry entry that no scenario crosses fails the
//! `pending_point_faults` assertion rather than silently shrinking the
//! matrix.

use v_system::prelude::*;

const SEEDS: u64 = 16;

/// Builds the per-cell scenario: a program executed remotely from ws1
/// onto ws2 (so source, target, and origin parties are distinct), plus
/// the precursor fault that makes lease-expiry/re-exec points reachable.
fn run_cell(point: FaultPoint, kind: FaultKind, seed: u64) {
    let mut plan = FaultPlan::none();
    // Precursor: silence one end of the lease so the expiry machinery has
    // something to do. Holder-side expiry needs a silent origin;
    // origin-side expiry and re-exec need a silent holder.
    let precursor = match (point.step, point.party) {
        (ProtocolStep::LeaseExpiry, Party::Target) => Some(1u16),
        (ProtocolStep::LeaseExpiry, Party::Origin) | (ProtocolStep::ReExec, _) => Some(2u16),
        _ => None,
    };
    if let Some(ws) = precursor {
        plan = plan.with(
            FaultTrigger::At(SimTime::from_micros(3_000_000)),
            FaultKind::Crash {
                ws,
                reboot_after: Some(SimDuration::from_secs(30)),
            },
        );
    }
    plan = plan.with(FaultTrigger::AtFaultPoint { lh: None, point }, kind.clone());
    let mut c = Cluster::new(ClusterConfig {
        workstations: 4,
        seed,
        faults: plan,
        migration: MigrationConfig {
            retry_limit: 3,
            ..MigrationConfig::default()
        },
        ..ClusterConfig::default()
    });
    c.exec(
        1,
        profiles::simulation_profile(SimDuration::from_secs(20)),
        ExecTarget::Named("ws2".into()),
        Priority::GUEST,
    );
    // Migration steps need a migration to cross them; lease steps fire
    // from the heartbeat machinery on their own.
    let migration_step = !matches!(
        point.step,
        ProtocolStep::LeaseRenew | ProtocolStep::LeaseExpiry | ProtocolStep::ReExec
    );
    if migration_step {
        c.at(
            SimTime::from_micros(5_000_000),
            Command::Migrate {
                ws: 2,
                lh: None,
                destroy_if_stuck: false,
            },
        );
    }
    c.run_for(SimDuration::from_secs(60));
    for _ in 0..40 {
        if c.pending() == 0 {
            break;
        }
        c.run_for(SimDuration::from_secs(30));
    }
    assert_eq!(
        c.pending(),
        0,
        "{point} seed {seed}: failed to quiesce under {kind:?}"
    );
    assert_eq!(
        c.pending_point_faults(),
        0,
        "{point} seed {seed}: fault point never crossed (vacuous cell)"
    );
    assert!(
        c.stats.faults_injected >= 1,
        "{point} seed {seed}: nothing injected"
    );
    let report = c.audit(true);
    assert!(report.is_clean(), "{point} seed {seed}: {report}");
}

/// Every registered point × 16 seeds, with the party station crashing
/// (and rebooting) at the crossing.
#[test]
fn matrix_crash_every_fault_point() {
    for &point in fault_points() {
        for seed in 0..SEEDS {
            run_cell(
                point,
                FaultKind::Crash {
                    ws: PARTY,
                    reboot_after: Some(SimDuration::from_secs(20)),
                },
                seed,
            );
        }
    }
}

/// Every registered point × 16 seeds, with the party station partitioned
/// from everyone else at the crossing (healing later).
#[test]
fn matrix_partition_every_fault_point() {
    for &point in fault_points() {
        for seed in 0..SEEDS {
            run_cell(
                point,
                FaultKind::Partition {
                    a: vec![PARTY],
                    b: vec![],
                    symmetric: true,
                    heal_after: Some(SimDuration::from_secs(30)),
                },
                seed,
            );
        }
    }
}

/// Every registered point × 16 seeds, with a network-wide corruption
/// window opening at the crossing.
#[test]
fn matrix_corruption_every_fault_point() {
    for &point in fault_points() {
        for seed in 0..SEEDS {
            run_cell(
                point,
                FaultKind::Corrupt {
                    probability: 0.5,
                    duration: SimDuration::from_secs(10),
                },
                seed,
            );
        }
    }
}
