//! Property-based tests on the core data structures and invariants,
//! spanning crates (run from the workspace root package).
//!
//! Each property is exercised over many deterministic, seeded random
//! cases (no external property-testing framework: inputs come from
//! [`DetRng`], so failures reproduce exactly).

use v_system::prelude::*;
use vkernel::split_units;
use vmem::{AddressSpace, BitSet, SpaceId, SpaceLayout, WwsParams, WwsSampler};
use vsim::{DetRng, Engine};

/// The event engine delivers in time order with FIFO tie-break,
/// regardless of insertion order.
#[test]
fn engine_delivers_in_order() {
    let mut rng = DetRng::seed(0xE1);
    for _case in 0..50 {
        let n = rng.index(200) + 1;
        let delays: Vec<u64> = (0..n).map(|_| rng.range_u64(0, 10_000)).collect();
        let mut e: Engine<usize> = Engine::new();
        for (i, &d) in delays.iter().enumerate() {
            e.schedule_after(SimDuration::from_micros(d), i);
        }
        let mut last = SimTime::ZERO;
        let mut seen = vec![false; delays.len()];
        while let Some((t, i)) = e.step() {
            assert!(t >= last, "time went backwards");
            assert_eq!(t.as_micros(), delays[i]);
            assert!(!seen[i], "duplicate delivery");
            seen[i] = true;
            last = t;
        }
        assert!(seen.iter().all(|&s| s), "lost event");
    }
}

/// Cancellation removes exactly the cancelled events.
#[test]
fn engine_cancellation_is_exact() {
    let mut rng = DetRng::seed(0xE2);
    for _case in 0..50 {
        let n = rng.index(100) + 1;
        let delays: Vec<u64> = (0..n).map(|_| rng.range_u64(0, 1_000)).collect();
        let cancel_mask: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
        let mut e: Engine<usize> = Engine::new();
        let ids: Vec<_> = delays
            .iter()
            .enumerate()
            .map(|(i, &d)| e.schedule_after(SimDuration::from_micros(d), i))
            .collect();
        let mut expected = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask[i] {
                e.cancel(*id);
            } else {
                expected.push(i);
            }
        }
        let mut got: Vec<usize> = Vec::new();
        while let Some((_, i)) = e.step() {
            got.push(i);
        }
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }
}

/// The timing-wheel queue is observationally identical to the binary
/// heap: identical schedule/cancel/step sequences produce identical
/// `(time, event)` pop orders — including FIFO same-instant tie-break —
/// across 32 seeds, with delays that land on every wheel level and
/// beyond the wheel horizon into the overflow map.
#[test]
fn queue_backends_are_observationally_identical() {
    for seed in 0..32u64 {
        let mut rng = DetRng::seed(0x3E0 + seed);
        let mut heap: Engine<usize> = Engine::with_backend(QueueBackend::Heap);
        let mut wheel: Engine<usize> = Engine::with_backend(QueueBackend::TimingWheel);
        let mut ids: Vec<(EventId, EventId)> = Vec::new();
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        for op in 0..400 {
            match rng.index(10) {
                // Mostly schedules, spanning instants (FIFO ties), each
                // wheel level, and the far-future overflow region.
                0..=5 => {
                    let d = match rng.index(5) {
                        0 => 0,
                        1 => rng.range_u64(1, 64),
                        2 => rng.range_u64(64, 1 << 18),
                        3 => rng.range_u64(1 << 18, 1 << 30),
                        // Past the ~19-simulated-hour wheel horizon.
                        _ => rng.range_u64(1 << 36, 1 << 40),
                    };
                    let a = heap.schedule_after(SimDuration::from_micros(d), op);
                    let b = wheel.schedule_after(SimDuration::from_micros(d), op);
                    assert_eq!(a, b, "seed {seed}: id streams diverged");
                    ids.push((a, b));
                }
                6..=7 => {
                    if !ids.is_empty() {
                        let (a, b) = ids[rng.index(ids.len())];
                        heap.cancel(a);
                        wheel.cancel(b);
                    }
                }
                _ => {
                    let h = heap.step();
                    let w = wheel.step();
                    assert_eq!(h, w, "seed {seed}: pop order diverged");
                    if let Some(p) = h {
                        popped.push(p);
                    }
                }
            }
            assert_eq!(heap.pending(), wheel.pending(), "seed {seed}");
            // The engine's registry gauges must track the live queue on
            // both backends: depth mirrors pending() exactly, and the
            // tombstone count (cancelled-but-not-yet-popped events) must
            // agree between backends at every step.
            let hg = heap.metrics().snapshot("heap");
            let wg = wheel.metrics().snapshot("wheel");
            assert_eq!(
                hg.gauge(Subsystem::Engine, "queue_depth"),
                Some(heap.pending() as f64),
                "seed {seed}: heap depth gauge drifted from pending()"
            );
            assert_eq!(
                hg.gauge(Subsystem::Engine, "queue_depth"),
                wg.gauge(Subsystem::Engine, "queue_depth"),
                "seed {seed}: depth gauges diverged"
            );
            assert_eq!(
                hg.gauge(Subsystem::Engine, "tombstones"),
                wg.gauge(Subsystem::Engine, "tombstones"),
                "seed {seed}: tombstone gauges diverged"
            );
        }
        // Drain both to the end; the tails must agree too.
        while let Some(h) = heap.step() {
            assert_eq!(Some(h), wheel.step(), "seed {seed}: drain diverged");
            popped.push(h);
        }
        assert_eq!(wheel.step(), None, "seed {seed}: wheel had extra events");
        // A drained queue reads depth 0 through the registry as well.
        // (Tombstones may stay nonzero: cancelling an already-delivered
        // id leaves a stale tombstone until the next compaction, so only
        // backend agreement is asserted for that gauge.)
        let hg = heap.metrics().snapshot("drained-heap");
        let wg = wheel.metrics().snapshot("drained-wheel");
        assert_eq!(hg.gauge(Subsystem::Engine, "queue_depth"), Some(0.0));
        assert_eq!(wg.gauge(Subsystem::Engine, "queue_depth"), Some(0.0));
        assert_eq!(
            hg.gauge(Subsystem::Engine, "tombstones"),
            wg.gauge(Subsystem::Engine, "tombstones"),
            "seed {seed}: drained tombstone gauges diverged"
        );
        assert!(
            popped.windows(2).all(|w| w[0].0 <= w[1].0),
            "seed {seed}: time went backwards"
        );
    }
}

/// BitSet agrees with a reference HashSet model under arbitrary
/// set/clear sequences.
#[test]
fn bitset_matches_model() {
    let mut rng = DetRng::seed(0xB1);
    for _case in 0..50 {
        let n_ops = rng.index(300) + 1;
        let mut b = BitSet::new(256);
        let mut model = std::collections::HashSet::new();
        for _ in 0..n_ops {
            let i = rng.index(256);
            if rng.chance(0.5) {
                b.set(i);
                model.insert(i);
            } else {
                b.clear(i);
                model.remove(&i);
            }
        }
        assert_eq!(b.count(), model.len());
        let mut got: Vec<usize> = b.iter().collect();
        let mut want: Vec<usize> = model.into_iter().collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}

/// split_units partitions the page list exactly: every page appears
/// once, in order, and no unit exceeds the unit size.
#[test]
fn split_units_partitions() {
    let mut rng = DetRng::seed(0x51);
    for _case in 0..60 {
        let n_pages = rng.range_u64(0, 2000) as u32;
        let unit_kb = rng.range_u64(2, 128);
        let pages: Vec<u32> = (0..n_pages).collect();
        let units = split_units(&pages, unit_kb * 1024);
        let flat: Vec<u32> = units.iter().flat_map(|u| u.pages.iter().copied()).collect();
        assert_eq!(flat, pages);
        for u in &units {
            assert!(u.bytes <= unit_kb * 1024);
            assert_eq!(u.bytes, u.pages.len() as u64 * 2048);
        }
    }
}

/// The WWS fit never panics on positive monotone-ish inputs and its
/// predictions are non-negative and monotone in the window length.
#[test]
fn wws_fit_is_sane() {
    let mut rng = DetRng::seed(0x77);
    for _case in 0..100 {
        let y1 = rng.range_f64(0.1, 100.0);
        let dy2 = rng.range_f64(0.0, 100.0);
        let dy3 = rng.range_f64(0.0, 100.0);
        let points = [(0.2, y1), (1.0, y1 + dy2), (3.0, y1 + dy2 + dy3)];
        let fit = WwsParams::fit_quantized(&points, 2.0);
        let mut prev = 0.0;
        for t in [0.1, 0.2, 0.5, 1.0, 2.0, 3.0, 10.0] {
            let v = fit.expected_dirty_kb_quantized(t, 2.0);
            assert!(v >= prev - 1e-9, "non-monotone at {t}: {v} < {prev}");
            prev = v;
        }
    }
}

/// The sampler never dirties more pages than are writable and never
/// touches read-only segments.
#[test]
fn sampler_respects_protection() {
    let mut rng = DetRng::seed(0x5A);
    for _case in 0..40 {
        let hot = rng.range_f64(0.0, 500.0);
        let w = rng.range_f64(0.0, 2000.0);
        let r = rng.range_f64(0.0, 200.0);
        let seed = rng.range_u64(0, u64::MAX - 1);
        let layout = SpaceLayout {
            code_bytes: 64 * 1024,
            init_data_bytes: 16 * 1024,
            heap_bytes: 128 * 1024,
            stack_bytes: 8 * 1024,
        };
        let mut space = AddressSpace::new(SpaceId(0), layout);
        let mut case_rng = DetRng::seed(seed);
        let params = WwsParams {
            hot_kb: hot,
            hot_write_kb_per_sec: w,
            cold_kb_per_sec: r,
        };
        let mut s = WwsSampler::new(params, &space, &mut case_rng);
        // write_page panics on read-only pages, so surviving is the test.
        s.advance(SimDuration::from_secs(5), &mut space, &mut case_rng);
        assert!(space.dirty_pages() <= space.writable_page_count());
    }
}

/// Duration formatting/parsing invariants used by reports.
#[test]
fn duration_arithmetic_consistent() {
    let mut rng = DetRng::seed(0xD1);
    for _case in 0..200 {
        let a = rng.range_u64(0, 1 << 40);
        let b = rng.range_u64(0, 1 << 40);
        let (da, db) = (SimDuration::from_micros(a), SimDuration::from_micros(b));
        assert_eq!((da + db).as_micros(), a + b);
        let t = SimTime::ZERO + da;
        assert_eq!(t.since(SimTime::ZERO), da);
        assert_eq!((t + db) - t, db);
    }
}

/// Whole-cluster invariant: for any (small) mix of programs started
/// via @*, every execution either succeeds and eventually finishes,
/// or fails cleanly — and every logical host is on at most one
/// workstation at the end.
#[test]
fn cluster_executions_settle() {
    let mut rng = DetRng::seed(0xC1);
    for _case in 0..12 {
        let n_jobs = rng.index(3) + 1;
        let seed = rng.range_u64(0, 1000);
        let mut c = Cluster::new(ClusterConfig {
            workstations: 4,
            seed,
            loss: LossModel::None,
            ..ClusterConfig::default()
        });
        for j in 0..n_jobs {
            let name = ["make", "cc68", "preprocessor"][j % 3];
            let row = profiles::row(name).expect("row");
            c.exec(
                1 + j % 4,
                profiles::steady_profile(row),
                ExecTarget::AnyIdle,
                Priority::GUEST,
            );
        }
        c.run_for(SimDuration::from_secs(120));
        assert_eq!(c.exec_reports.len(), n_jobs);
        let ok = c.exec_reports.iter().filter(|r| r.success).count();
        assert_eq!(c.stats.programs_finished as usize, ok);
        // No logical host is resident twice.
        for r in &c.exec_reports {
            if let Some(lh) = r.lh {
                let residents = c
                    .stations
                    .iter()
                    .filter(|w| w.kernel.is_resident(lh))
                    .count();
                assert!(residents <= 1, "{lh} resident {residents} times");
            }
        }
    }
}

/// Dominance: for any dirty behaviour, pre-copy's freeze time is no
/// worse than freeze-and-copy's (and strictly better for any program
/// with a reasonable working set).
#[test]
fn precopy_never_freezes_longer_than_naive() {
    use vcore::{MigrationConfig, StopPolicy, Strategy};
    use vmem::{SpaceLayout, WwsParams};

    let mut rng = DetRng::seed(0xF1);
    for _case in 0..8 {
        let hot_kb = rng.range_f64(1.0, 120.0);
        let write_rate = rng.range_f64(1.0, 600.0);
        let cold = rng.range_f64(0.0, 30.0);
        let seed = rng.range_u64(0, 500);

        let freeze_of = |strategy: Strategy| {
            let mut c = Cluster::new(ClusterConfig {
                workstations: 3,
                seed,
                loss: LossModel::None,
                migration: MigrationConfig {
                    strategy,
                    ..MigrationConfig::default()
                },
                ..ClusterConfig::default()
            });
            let profile = ProgramProfile::steady(
                "subject",
                SpaceLayout {
                    code_bytes: 96 * 1024,
                    init_data_bytes: 16 * 1024,
                    heap_bytes: 512 * 1024,
                    stack_bytes: 16 * 1024,
                },
                WwsParams {
                    hot_kb,
                    hot_write_kb_per_sec: write_rate,
                    cold_kb_per_sec: cold,
                },
                SimDuration::from_secs(3600),
            );
            c.exec(1, profile, ExecTarget::Named("ws2".into()), Priority::GUEST);
            c.run_for(SimDuration::from_secs(15));
            let lh = c.exec_reports[0].lh.expect("created");
            c.migrateprog(2, lh, false);
            c.run_for(SimDuration::from_secs(120));
            let r = c.migration_reports[0].clone();
            assert!(r.success, "{r:?}");
            r.freeze_time
        };

        let pre = freeze_of(Strategy::PreCopy(StopPolicy::default()));
        let naive = freeze_of(Strategy::FreezeAndCopy);
        assert!(
            pre <= naive,
            "pre-copy froze {pre} vs naive {naive} (hot={hot_kb:.0}KB w={write_rate:.0}KB/s r={cold:.0}KB/s)"
        );
    }
}
