//! System-level tests through the published `v_system` API: the paper's
//! end-to-end claims as assertions.

use v_system::prelude::*;

fn quiet(workstations: usize, seed: u64) -> Cluster {
    Cluster::new(ClusterConfig {
        workstations,
        seed,
        loss: LossModel::None,
        ..ClusterConfig::default()
    })
}

/// §1: "a user may wish to compile a program and reformat the
/// documentation after fixing a program error, while continuing to read
/// mail" — three concurrent offloaded jobs from one workstation.
#[test]
fn concurrent_offload_from_one_workstation() {
    let mut c = quiet(5, 11);
    for name in ["cc68", "tex", "make"] {
        let row = profiles::row(name).expect("row");
        c.exec(
            1,
            profiles::steady_profile(row),
            ExecTarget::AnyIdle,
            Priority::GUEST,
        );
    }
    c.run_for(SimDuration::from_secs(120));
    assert_eq!(c.exec_reports.len(), 3);
    assert!(c.exec_reports.iter().all(|r| r.success));
    // They spread across machines (max 3 guests per host by default, and
    // the requester is excluded from @*).
    for r in &c.exec_reports {
        assert_ne!(r.chosen_host, Some(c.stations[1].host));
    }
    c.run_for(SimDuration::from_secs(120));
    assert_eq!(c.stats.programs_finished, 3);
}

/// §2: any program can be executed remotely without modification — the
/// same profile runs locally and remotely with identical results.
#[test]
fn programs_are_location_transparent() {
    let run = |target: ExecTarget| {
        let mut c = quiet(3, 21);
        c.file_server_mut().add_file("in.dat", 32 * 1024);
        let row = profiles::row("optimizer").expect("row");
        let profile = ProgramProfile {
            name: "optimizer".into(),
            layout: profiles::layout_for("optimizer"),
            wws: row.fit(),
            phases: vec![
                Phase::FileRead {
                    name: "in.dat".into(),
                    bytes: 32 * 1024,
                    chunk: 8 * 1024,
                },
                Phase::Compute(SimDuration::from_secs(3)),
                Phase::Display { chars: 100 },
            ],
        };
        c.exec(1, profile, target, Priority::GUEST);
        c.run_for(SimDuration::from_secs(120));
        assert!(c.exec_reports[0].success);
        assert_eq!(c.stats.programs_finished, 1);
        (
            c.file_server().stats().bytes_read,
            c.stations[1].display.stats().chars,
        )
    };
    let local = run(ExecTarget::Local);
    let remote = run(ExecTarget::Named("ws2".into()));
    assert_eq!(local, remote, "same I/O behaviour local vs remote");
}

/// §3: a program migrated mid-file-transfer completes the transfer from
/// its new host — in-flight IPC survives migration.
#[test]
fn migration_mid_file_transfer_completes() {
    let mut c = quiet(3, 31);
    c.file_server_mut().add_file("big.dat", 2 * 1024 * 1024);
    let profile = ProgramProfile {
        name: "reader".into(),
        layout: profiles::layout_for("optimizer"),
        wws: profiles::row("optimizer").expect("row").fit(),
        phases: vec![Phase::FileRead {
            name: "big.dat".into(),
            bytes: 2 * 1024 * 1024,
            chunk: 16 * 1024,
        }],
    };
    c.exec(1, profile, ExecTarget::Named("ws2".into()), Priority::GUEST);
    // Let the transfer get going, then evict mid-stream (~45 chunks of
    // the 128 needed fit into 1.5 s including program creation).
    c.run_for(SimDuration::from_millis(1500));
    let lh = c.exec_reports[0].lh.expect("created");
    assert!(c.file_server().stats().bytes_read > 0, "transfer started");
    assert!(
        c.file_server().stats().bytes_read < 2 * 1024 * 1024,
        "transfer not done yet"
    );
    c.migrateprog(2, lh, false);
    c.run_for(SimDuration::from_secs(120));
    assert!(c.migration_reports[0].success);
    assert_eq!(c.stats.programs_finished, 1, "reader finished elsewhere");
    assert_eq!(c.file_server().stats().bytes_read, 2 * 1024 * 1024);
}

/// §3.1: migrating twice in a row works (A -> B -> C), ids stable.
#[test]
fn double_migration() {
    let mut c = quiet(4, 41);
    let job = profiles::simulation_profile(SimDuration::from_secs(600));
    c.exec(1, job, ExecTarget::Named("ws2".into()), Priority::GUEST);
    c.run_for(SimDuration::from_secs(10));
    let lh = c.exec_reports[0].lh.expect("created");
    let home0 = c.locate(lh).expect("alive");

    c.migrateprog(c.index_of(home0), lh, false);
    c.run_for(SimDuration::from_secs(30));
    let home1 = c.locate(lh).expect("alive after 1st migration");
    assert_ne!(home1, home0);

    c.migrateprog(c.index_of(home1), lh, false);
    c.run_for(SimDuration::from_secs(30));
    let home2 = c.locate(lh).expect("alive after 2nd migration");
    assert_ne!(home2, home1);
    assert_eq!(c.migration_reports.len(), 2);
    assert!(c.migration_reports.iter().all(|r| r.success));
    // The pid namespace never changed.
    assert_eq!(c.exec_reports[0].root.map(|p| p.lh), Some(lh));
}

/// §4.1 headline numbers, end to end through the public API.
#[test]
fn headline_costs_within_tolerance() {
    let mut c = quiet(4, 51);
    let row = profiles::row("parser").expect("row");
    c.exec(
        1,
        profiles::steady_profile(row),
        ExecTarget::AnyIdle,
        Priority::GUEST,
    );
    c.run_for(SimDuration::from_secs(30));
    let r = c.exec_reports[0].clone();
    assert!(r.success);
    // 23 ms selection +- 15%.
    let sel = r.selection_time.as_secs_f64();
    assert!((sel - 0.023).abs() < 0.0035, "selection {sel}");
    // Parser image = 192 KB -> load+setup ~ 192*3.3 + ~45 ms.
    let create = r.creation_time.as_secs_f64();
    assert!((0.55..0.85).contains(&create), "creation {create}");
}

/// Crash of an unrelated workstation does not disturb running programs.
#[test]
fn unrelated_crash_is_harmless() {
    let mut c = quiet(4, 61);
    let row = profiles::row("assembler").expect("row");
    c.exec(
        1,
        profiles::steady_profile(row),
        ExecTarget::Named("ws2".into()),
        Priority::GUEST,
    );
    c.run_for(SimDuration::from_secs(5));
    let t = c.now();
    c.at(t + SimDuration::from_secs(1), Command::Crash { ws: 3 });
    c.run_for(SimDuration::from_secs(120));
    assert_eq!(c.stats.programs_finished, 1);
}

/// A crash of the migration *target* mid-copy aborts cleanly: the program
/// unfreezes in place and keeps running on the source.
#[test]
fn target_crash_mid_migration_unfreezes_in_place() {
    let mut c = quiet(2, 71);
    let job = profiles::simulation_profile(SimDuration::from_secs(300));
    c.exec(1, job, ExecTarget::Named("ws1".into()), Priority::GUEST);
    c.run_for(SimDuration::from_secs(10));
    let lh = c.exec_reports[0].lh.expect("created");

    // Only ws2 can accept; crash it shortly after migration starts,
    // while the multi-second pre-copy is still in flight.
    c.migrateprog(1, lh, false);
    let t = c.now();
    c.at(t + SimDuration::from_millis(600), Command::Crash { ws: 2 });
    c.run_for(SimDuration::from_secs(30));

    let r = &c.migration_reports[0];
    assert!(!r.success, "migration must fail: {r:?}");
    // The program survived in place and finishes.
    assert_eq!(c.locate(lh), Some(c.stations[1].host));
    assert!(
        !c.stations[1]
            .kernel
            .logical_host(lh)
            .expect("resident")
            .is_frozen(),
        "unfrozen after abort"
    );
    c.run_for(SimDuration::from_secs(400));
    assert_eq!(c.stats.programs_finished, 1);
}

/// A *source* crash mid-migration must not leak the half-built temporary
/// logical host at the target: the target's program manager reclaims it
/// after a timeout.
#[test]
fn source_crash_mid_migration_reclaims_temp_at_target() {
    let mut c = quiet(2, 81);
    let job = profiles::simulation_profile(SimDuration::from_secs(600));
    c.exec(1, job, ExecTarget::Named("ws1".into()), Priority::GUEST);
    c.run_for(SimDuration::from_secs(10));
    let lh = c.exec_reports[0].lh.expect("created");

    // Target is ws2. Crash the *source* right after pre-copy starts.
    c.migrateprog(1, lh, false);
    let t = c.now();
    c.at(t + SimDuration::from_millis(500), Command::Crash { ws: 1 });
    c.run_for(SimDuration::from_secs(5));
    // The temp logical host exists at the target...
    let temps_before: usize = c.stations[2].kernel.resident_lhs().len();
    assert!(temps_before >= 2, "system lh + temp lh at the target");

    // ...and is reclaimed after the init timeout.
    c.run_for(SimDuration::from_secs(120));
    assert_eq!(
        c.stations[2].pm.stats().migrations_expired,
        1,
        "temp logical host reclaimed"
    );
    let temps_after = c.stations[2].kernel.resident_lhs().len();
    assert_eq!(temps_after, temps_before - 1);
}
