//! Causal-span well-formedness over whole cluster runs.
//!
//! The span layer (see `vsim::span`) is only trustworthy if the
//! instrumentation keeps its books: every close matches an open, children
//! nest inside their parents, and the migrator's phase spans tile the
//! root migration span exactly (each phase closes the instant the next
//! opens). These tests drive real cluster runs and hold the merged span
//! tree to those rules.

use v_system::prelude::*;

fn span_cluster(seed: u64, level: TraceLevel) -> Cluster {
    Cluster::new(ClusterConfig {
        workstations: 3,
        seed,
        loss: LossModel::None,
        trace: level,
        ..ClusterConfig::default()
    })
}

/// Launches a guest program on ws2 and migrates it to ws3's pick.
fn run_one_migration(c: &mut Cluster) {
    c.exec(
        1,
        profiles::simulation_profile(SimDuration::from_secs(600)),
        ExecTarget::Named("ws2".into()),
        Priority::GUEST,
    );
    c.run_for(SimDuration::from_secs(10));
    let lh = c.exec_reports[0].lh.expect("program created");
    c.migrateprog(2, lh, false);
    c.run_for(SimDuration::from_secs(60));
    assert!(c.migration_reports.iter().any(|r| r.success));
}

/// A fault-free detail-level run produces a span tree with no structural
/// violations and strictly nested intervals; only in-flight IPC may be
/// left open at the (arbitrary) stop instant — never a migration phase.
#[test]
fn fault_free_detail_run_is_well_formed_and_nested() {
    let mut c = span_cluster(11, TraceLevel::Detail);
    run_one_migration(&mut c);
    let tree = c.span_tree();
    assert!(!tree.is_empty(), "detail run must record spans");
    let violations = tree.validate();
    assert!(violations.is_empty(), "{violations:?}");
    let nesting = tree.validate_nesting();
    assert!(nesting.is_empty(), "{nesting:?}");
    for open in tree.unclosed() {
        assert!(
            matches!(open.name, "ipc" | "serve"),
            "only in-flight IPC may be open at cutoff, found {:?} ({})",
            open.name,
            open.id
        );
    }
}

/// The migrator's phase spans tile the root exactly: top-level phases sum
/// to the root `migration` span and freeze sub-phases sum to `freeze`,
/// with zero error — which is what lets experiment breakdowns account for
/// every microsecond of a migration.
#[test]
fn migration_phase_spans_tile_the_root_exactly() {
    let mut c = span_cluster(23, TraceLevel::Info);
    run_one_migration(&mut c);
    let tree = c.span_tree();
    let root = tree
        .spans_named("migration")
        .next()
        .expect("root migration span");
    let total = tree.duration_of(root.id).expect("migration closed");
    assert!(!total.is_zero());
    let phase_sum: SimDuration = tree.breakdown(root.id).into_iter().map(|(_, d)| d).sum();
    assert_eq!(phase_sum, total, "phases must tile the migration span");
    let names: Vec<&str> = tree.children(root.id).map(|n| n.name).collect();
    for expected in ["selection", "initialization", "precopy_round", "freeze"] {
        assert!(names.contains(&expected), "missing phase {expected:?}");
    }
    let freeze = tree
        .children(root.id)
        .find(|n| n.name == "freeze")
        .expect("freeze phase");
    let freeze_total = tree.duration_of(freeze.id).expect("freeze closed");
    let sub_sum: SimDuration = tree.breakdown(freeze.id).into_iter().map(|(_, d)| d).sum();
    assert_eq!(sub_sum, freeze_total, "sub-phases must tile the freeze");
    let sub_names: Vec<&str> = tree.children(freeze.id).map(|n| n.name).collect();
    assert_eq!(sub_names, ["residual_copy", "commit", "rebind"]);
}

/// A remote Send/Receive/Reply round-trip is one causal tree across
/// stations: the server's `serve` span is a child of the client's `ipc`
/// span, carried over the wire by the span context on request frames.
#[test]
fn remote_ipc_spans_link_across_stations() {
    let mut c = span_cluster(31, TraceLevel::Detail);
    run_one_migration(&mut c);
    let tree = c.span_tree();
    let mut cross_station_links = 0usize;
    for serve in tree.spans_named("serve") {
        let parent = serve
            .parent
            .span_id()
            .expect("serve spans always have an ipc parent");
        let ipc = tree.get(parent).expect("parent present in merged tree");
        assert_eq!(ipc.name, "ipc");
        if ipc.host != serve.host {
            cross_station_links += 1;
        }
    }
    assert!(
        cross_station_links > 0,
        "a migration involves remote IPC, so some serve spans must live \
         on a different station than their ipc parent"
    );
}

/// Span ids are globally unique across components: every id in the merged
/// tree appears exactly once even though kernels, migrators, and the
/// cluster scheduler allocate independently.
#[test]
fn span_ids_are_globally_unique_across_components() {
    let mut c = span_cluster(47, TraceLevel::Detail);
    run_one_migration(&mut c);
    let tree = c.span_tree();
    let mut seen = std::collections::HashSet::new();
    for n in tree.nodes() {
        assert!(seen.insert(n.id.raw()), "duplicate span id {}", n.id);
    }
    assert!(seen.len() > 10, "expected a busy tree, got {}", seen.len());
}
