//! Chaos soak: deterministic fault injection + cluster invariant audits.
//!
//! Every test here drives the cluster through scheduled failures — station
//! crashes, partitions, corruption windows, service restarts — and then
//! asks the invariant auditor whether the recovery machinery (watchdogs,
//! retransmission backoff, migration retry, broadcast rebinding) actually
//! restored a coherent cluster. One test deliberately disables the reclaim
//! watchdog to prove the auditor is not vacuous.

use v_system::prelude::*;

/// Builds a chaos cluster: 4 workstations, migration retries enabled,
/// realistic packet loss, and the given fault plan.
fn chaos_cluster(seed: u64, faults: FaultPlan) -> Cluster {
    Cluster::new(ClusterConfig {
        workstations: 4,
        seed,
        faults,
        // Info keeps the migration phase spans so the soak can hold the
        // span tree to its well-formedness rules under faults too.
        trace: TraceLevel::Info,
        migration: MigrationConfig {
            retry_limit: 3,
            ..MigrationConfig::default()
        },
        // Coarse sampling (the runs span many simulated minutes) so the
        // soak also exercises the telemetry path under faults.
        sampling: Some(SamplingSpec {
            every: SimDuration::from_millis(100),
            capacity: 512,
        }),
        ..ClusterConfig::default()
    })
}

/// Starts a mixed workload (remote execs plus staggered migrations) so
/// fault windows land on live protocol activity.
fn seed_workload(c: &mut Cluster) {
    for ws in 1..=3 {
        c.exec(
            ws,
            profiles::simulation_profile(SimDuration::from_secs(8)),
            ExecTarget::AnyIdle,
            Priority::GUEST,
        );
    }
    for (i, at) in [(1usize, 6u64), (2, 9), (3, 12), (4, 15)] {
        c.at(
            SimTime::from_micros(at * 1_000_000),
            Command::Migrate {
                ws: i,
                lh: None,
                destroy_if_stuck: false,
            },
        );
    }
}

/// Runs past the fault horizon, then drains the queue completely (crashed
/// stations reboot, partitions heal, backed-off retransmissions give up).
fn run_to_quiescence(c: &mut Cluster, seed: u64) {
    c.run_for(SimDuration::from_secs(45));
    for _ in 0..40 {
        if c.pending() == 0 {
            break;
        }
        c.run_for(SimDuration::from_secs(30));
    }
    assert_eq!(c.pending(), 0, "seed {seed} failed to quiesce");
}

/// The tentpole soak: 32 random-but-reproducible fault plans, each run to
/// quiescence and audited — zero invariant violations tolerated.
#[test]
fn soak_32_seeds_zero_violations() {
    for seed in 0..32u64 {
        let mut rng = DetRng::seed(0xC0FFEE ^ seed);
        let plan = FaultPlan::random(&mut rng, 5, SimDuration::from_secs(30));
        let mut c = chaos_cluster(seed, plan);
        seed_workload(&mut c);
        run_to_quiescence(&mut c, seed);
        let report = c.audit(true);
        assert!(
            report.is_clean(),
            "seed {seed}: {report}\nplan: {:?}",
            c.config().faults
        );
        assert!(
            c.stats.faults_injected > 0,
            "seed {seed}: plan injected nothing"
        );
        // Spans must stay structurally sound under faults: no close
        // without an open, no duplicate opens, no orphaned parent ids.
        // (Crashed hosts may leave spans *unclosed* — that is data, not a
        // violation.)
        let tree = c.span_tree();
        let violations = tree.validate();
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        // Sampled series must stay monotone in sim time under faults:
        // crashes and partitions may flatten the values, and decimation
        // may thin the points, but time never reorders or repeats.
        let telemetry = c.series_report();
        assert!(telemetry.sweeps > 0, "seed {seed}: sampling never swept");
        for s in &telemetry.series {
            assert!(
                !s.points.is_empty(),
                "seed {seed}: series {} retained nothing",
                s.name
            );
            assert!(
                s.points.windows(2).all(|w| w[0].0 < w[1].0),
                "seed {seed}: series {} went backwards in sim time",
                s.name
            );
        }
    }
}

/// The same seed and plan must replay exactly: identical merged traces and
/// identical event counts.
#[test]
fn chaos_runs_are_deterministic() {
    let run = || {
        let mut rng = DetRng::seed(0xC0FFEE ^ 3);
        let plan = FaultPlan::random(&mut rng, 5, SimDuration::from_secs(30));
        let mut c = chaos_cluster(3, plan);
        seed_workload(&mut c);
        run_to_quiescence(&mut c, 3);
        c.merge_component_traces();
        (
            c.events_delivered(),
            c.stats.faults_injected,
            c.trace().records().to_vec(),
        )
    };
    let (events_a, faults_a, trace_a) = run();
    let (events_b, faults_b, trace_b) = run();
    assert_eq!(events_a, events_b, "event counts diverged");
    assert_eq!(faults_a, faults_b, "fault execution diverged");
    assert_eq!(trace_a, trace_b, "traces diverged");
}

/// Disabling the reclaim watchdog must produce an audit violation for the
/// same scenario a healthy cluster survives — the auditor is not vacuous.
#[test]
fn auditor_catches_disabled_watchdog_leak() {
    let plan = || {
        FaultPlan::none().with(
            FaultTrigger::OnMigrationPhase {
                lh: None,
                phase: MigrationPhase::WhileFrozen,
            },
            FaultKind::Crash {
                ws: 1,
                reboot_after: None,
            },
        )
    };
    let run = |watchdog: bool| {
        let mut c = Cluster::new(ClusterConfig {
            workstations: 3,
            seed: 7,
            loss: LossModel::None,
            faults: plan(),
            ..ClusterConfig::default()
        });
        if !watchdog {
            for w in &mut c.stations {
                w.pm.set_migration_watchdog(false);
            }
        }
        c.exec(
            1,
            profiles::simulation_profile(SimDuration::from_secs(600)),
            ExecTarget::Local,
            Priority::GUEST,
        );
        c.run_for(SimDuration::from_secs(5));
        let lh = c.exec_reports[0].lh.expect("program created");
        c.migrateprog(1, lh, false);
        // The source crashes at the freeze point and never reboots; the
        // target is left holding a half-built temporary logical host.
        c.run_for(SimDuration::from_secs(180));
        c.audit(true)
    };
    let broken = run(false);
    assert!(
        broken
            .violations
            .iter()
            .any(|v| matches!(v, AuditViolation::OrphanTempLh { .. })),
        "expected an orphan-temp-lh violation, got: {broken}"
    );
    let healthy = run(true);
    assert!(
        healthy.is_clean(),
        "watchdog-enabled run must reclaim the temporary: {healthy}"
    );
}

/// A symmetric partition between source and target after pre-copy round 1:
/// the target's watchdog reclaims the half-built temporary, and the retry
/// excludes the failed target and lands the program on the remaining host.
#[test]
fn partition_mid_precopy_reclaims_and_retries_elsewhere() {
    let plan = FaultPlan::none().with(
        FaultTrigger::OnMigrationPhase {
            lh: None,
            phase: MigrationPhase::AfterPrecopyRound(1),
        },
        FaultKind::Partition {
            a: vec![1],
            b: vec![2],
            symmetric: true,
            heal_after: Some(SimDuration::from_secs(120)),
        },
    );
    let mut c = Cluster::new(ClusterConfig {
        workstations: 3,
        seed: 5,
        loss: LossModel::None,
        faults: plan,
        migration: MigrationConfig {
            retry_limit: 2,
            ..MigrationConfig::default()
        },
        ..ClusterConfig::default()
    });
    c.exec(
        1,
        profiles::simulation_profile(SimDuration::from_secs(600)),
        ExecTarget::Local,
        Priority::GUEST,
    );
    c.run_for(SimDuration::from_secs(5));
    let lh = c.exec_reports[0].lh.expect("program created");
    c.migrateprog(1, lh, false);
    c.run_for(SimDuration::from_secs(240));
    // ws2 (the deterministic first responder) was cut off mid-pre-copy;
    // its reclaim watchdog expired the temporary logical host.
    assert!(
        c.stations[2].pm.stats().migrations_expired >= 1,
        "first target should have reclaimed the half-built temporary"
    );
    // The retry excluded ws2 and chose the remaining workstation.
    assert_eq!(c.locate(lh), Some(c.stations[3].host));
    assert_eq!(c.behavior_station(lh), Some(3));
    assert!(c.migration_reports.iter().any(|r| r.success));
    let report = c.audit(false);
    assert!(report.is_clean(), "{report}");
}

/// The old host crashes at the commit point (state installed, unfreeze
/// unsent), reboots with no forwarding state, and a third party holding a
/// stale binding still reaches the program by broadcast re-query (§3.3).
#[test]
fn crash_after_commit_rebinds_by_broadcast_not_forwarding() {
    let plan = FaultPlan::none().with(
        FaultTrigger::OnMigrationPhase {
            lh: None,
            phase: MigrationPhase::AfterCommit,
        },
        FaultKind::Crash {
            ws: 1,
            reboot_after: Some(SimDuration::from_secs(5)),
        },
    );
    let mut c = Cluster::new(ClusterConfig {
        workstations: 3,
        seed: 13,
        loss: LossModel::None,
        faults: plan,
        ..ClusterConfig::default()
    });
    c.exec(
        1,
        profiles::simulation_profile(SimDuration::from_secs(600)),
        ExecTarget::Local,
        Priority::GUEST,
    );
    c.run_for(SimDuration::from_secs(5));
    let lh = c.exec_reports[0].lh.expect("program created");
    c.migrateprog(1, lh, false);
    c.run_for(SimDuration::from_secs(60));
    // The crash killed the step-5 unfreeze send; after the reboot the
    // re-armed retransmission completed the migration at ws2.
    assert_eq!(c.locate(lh), Some(c.stations[2].host));
    assert!(c.migration_reports.iter().any(|r| r.success));
    // The rebooted old host holds no forwarding state (§3.3: no residual
    // dependencies on the old host).
    assert_eq!(c.stations[1].kernel.forwarding_entries(), 0);

    // Plant a stale binding at ws3 and operate on the program through it:
    // delivery must recover via broadcast re-query, not forwarding.
    let old_host = c.stations[1].host;
    c.stations[3].kernel.learn_binding(lh, old_host);
    let broadcasts_before = c.stations[3].kernel.stats().broadcast_requests;
    c.suspendprog(3, lh);
    c.run_for(SimDuration::from_secs(30));
    assert!(
        c.stations[2]
            .kernel
            .logical_host(lh)
            .map(|l| l.is_frozen())
            .unwrap_or(false),
        "suspend must reach the program's new host"
    );
    assert!(
        c.stations[3].kernel.stats().broadcast_requests > broadcasts_before,
        "stale binding must be corrected by broadcast re-query"
    );
    assert!(c.stations[1].kernel.stats().not_here >= 1);
    for w in &c.stations {
        assert_eq!(w.kernel.stats().forwarded_requests, 0);
    }
    let report = c.audit(false);
    assert!(report.is_clean(), "{report}");
}

/// Periodic checkpoint audits run inside the event loop and stay clean on
/// a fault-free run.
#[test]
fn periodic_checkpoint_audits_are_clean() {
    let mut c = Cluster::new(ClusterConfig {
        workstations: 3,
        seed: 17,
        loss: LossModel::None,
        audit_every: Some(SimDuration::from_secs(5)),
        ..ClusterConfig::default()
    });
    c.exec(
        1,
        profiles::simulation_profile(SimDuration::from_secs(20)),
        ExecTarget::AnyIdle,
        Priority::GUEST,
    );
    c.run_for(SimDuration::from_secs(60));
    assert!(c.audit_reports.len() >= 4, "checkpoints ran");
    assert!(c.audit_reports.iter().all(|r| r.is_clean()));
    assert_eq!(c.stats.audit_violations, 0);
}

/// A partition heal racing the lease-expiry grace window: the holder is
/// cut off long enough that, depending on where the heal lands relative
/// to the grace boundary, either (a) the origin declares it dead and
/// re-executes while the stale copy self-exterminates, or (b) the healed
/// heartbeat arrives in time and the lease survives. Sweeping the heal
/// across the boundary must exercise BOTH branches, and every run must
/// converge to exactly one owner with a clean audit.
#[test]
fn partition_heal_racing_grace_window_converges_to_one_owner() {
    let mut exterminated_runs = 0u32;
    let mut survived_runs = 0u32;
    for heal_secs in [8u64, 12, 16, 20, 24] {
        let plan = FaultPlan::none().with(
            FaultTrigger::At(SimTime::from_micros(5_000_000)),
            FaultKind::Partition {
                a: vec![2],
                b: vec![0, 1, 3, 4],
                symmetric: true,
                heal_after: Some(SimDuration::from_secs(heal_secs)),
            },
        );
        let mut c = Cluster::new(ClusterConfig {
            workstations: 4,
            seed: 42,
            loss: LossModel::None,
            faults: plan,
            audit_every: Some(SimDuration::from_secs(2)),
            ..ClusterConfig::default()
        });
        c.exec(
            1,
            profiles::simulation_profile(SimDuration::from_secs(40)),
            ExecTarget::Named("ws2".into()),
            Priority::GUEST,
        );
        run_to_quiescence(&mut c, heal_secs);
        assert!(
            c.stats.faults_injected >= 1,
            "heal@{heal_secs}s: partition never applied"
        );
        // The lease machinery was actually engaged.
        assert!(
            c.stations[1].pm.stats().leases_granted >= 1,
            "heal@{heal_secs}s: no lease granted"
        );
        if c.stats.orphans_exterminated > 0 || c.stats.re_execs > 0 {
            exterminated_runs += 1;
        } else {
            survived_runs += 1;
        }
        // One owner, every checkpoint and the final sweep clean.
        let report = c.audit(true);
        assert!(report.is_clean(), "heal@{heal_secs}s: {report}");
        assert!(
            c.audit_reports.iter().all(|r| r.is_clean()),
            "heal@{heal_secs}s: a checkpoint audit caught a split brain"
        );
    }
    assert!(
        exterminated_runs >= 1,
        "sweep never crossed the grace boundary (no extermination branch)"
    );
    assert!(
        survived_runs >= 1,
        "sweep never healed inside the grace window (no survival branch)"
    );
}

/// Disabling orphan extermination must leak an orphan the auditor then
/// reports as lease-expired-but-alive — proving the lease checks in the
/// final audit are not vacuous (the healthy twin of this run stays
/// clean in the matrix soak).
#[test]
fn auditor_catches_disabled_lease_enforcement() {
    let plan = || {
        FaultPlan::none().with(
            FaultTrigger::At(SimTime::from_micros(4_000_000)),
            FaultKind::Crash {
                ws: 1,
                reboot_after: None,
            },
        )
    };
    let run = |enforce: bool| {
        let mut c = Cluster::new(ClusterConfig {
            workstations: 3,
            seed: 11,
            loss: LossModel::None,
            faults: plan(),
            ..ClusterConfig::default()
        });
        if !enforce {
            for w in &mut c.stations {
                w.pm.set_lease_enforcement(false);
            }
        }
        // A long-running remote execution from ws1 onto ws2; the origin
        // then crashes for good, so the lease can never be renewed.
        c.exec(
            1,
            profiles::simulation_profile(SimDuration::from_secs(600)),
            ExecTarget::Named("ws2".into()),
            Priority::GUEST,
        );
        c.run_for(SimDuration::from_secs(120));
        (c.audit(true), c.stats.orphans_exterminated)
    };
    let (broken, exterminated) = run(false);
    assert_eq!(exterminated, 0, "enforcement was supposed to be off");
    assert!(
        broken
            .violations
            .iter()
            .any(|v| matches!(v, AuditViolation::LeaseExpiredButAlive { .. })),
        "expected a lease-expired-but-alive violation, got: {broken}"
    );
    let (healthy, exterminated) = run(true);
    assert!(
        exterminated >= 1,
        "enforcement must exterminate the orphan whose origin died"
    );
    assert!(
        healthy
            .violations
            .iter()
            .all(|v| !matches!(v, AuditViolation::LeaseExpiredButAlive { .. })),
        "enforcement-on run must not leak an expired lease: {healthy}"
    );
}
