//! Same-seed replay regression: two identical cluster runs must produce
//! identical trace streams, *including* through the file-server and
//! multicast (program-manager group) paths.
//!
//! This is the behavioural twin of the `det-hash` rule in `vlint`:
//! hash-ordered iteration anywhere in the library crates shows up here as
//! a diverged trace long before it shows up as a wrong answer. The
//! workload is chosen to force both audited paths: `ExecTarget::AnyIdle`
//! selection rides the program-manager multicast group, and the program
//! images plus an explicit `FileRead` phase stream through the network
//! file server.

use v_system::prelude::*;
use v_system::vnet::McastGroup;
use v_system::vsim::{ToJson, TraceRecord};

/// The well-known program-manager group (mirrors `PM_MCAST` in vcluster).
const PM_MCAST: McastGroup = McastGroup(1);

/// Everything one run produces that a replay must reproduce exactly.
struct Outcome {
    records: Vec<TraceRecord>,
    events_delivered: u64,
    images_loaded: u64,
    bytes_read: u64,
    mcast_members: usize,
    faults_injected: u64,
    /// The sampled time-series, fully serialized: series identity is
    /// byte identity of the JSON artifact two runs would emit.
    series_json: String,
    sweeps: u64,
}

/// One full cluster run at the given seed: three `@*` remote execs whose
/// programs read a shared file, run to quiescence under light packet loss
/// so retransmission randomness is in play, then merge every component
/// trace into one stream.
fn run_once(seed: u64) -> Outcome {
    run_once_on(seed, QueueBackend::Heap)
}

/// [`run_once`], but on an explicit event-queue backend.
fn run_once_on(seed: u64, queue: QueueBackend) -> Outcome {
    run_once_with(seed, queue, FaultPlan::none())
}

/// [`run_once_on`], with a fault plan driving crashes, partitions, and
/// corruption windows through the run.
fn run_once_with(seed: u64, queue: QueueBackend, faults: FaultPlan) -> Outcome {
    let mut c = Cluster::new(ClusterConfig {
        workstations: 4,
        seed,
        loss: LossModel::Bernoulli(0.02),
        trace: TraceLevel::Detail,
        queue,
        faults,
        sampling: Some(SamplingSpec::default()),
        ..ClusterConfig::default()
    });
    c.file_server_mut().add_file("replay.dat", 48 * 1024);
    for ws in 1..=3 {
        let row = profiles::row("cc68").expect("profile row");
        let profile = ProgramProfile {
            name: "cc68".into(),
            layout: profiles::layout_for("cc68"),
            wws: row.fit(),
            phases: vec![
                Phase::FileRead {
                    name: "replay.dat".into(),
                    bytes: 48 * 1024,
                    chunk: 8 * 1024,
                },
                Phase::Compute(SimDuration::from_secs(2)),
            ],
        };
        c.exec(ws, profile, ExecTarget::AnyIdle, Priority::GUEST);
    }
    c.run_for(SimDuration::from_secs(60));
    for _ in 0..20 {
        if c.pending() == 0 {
            break;
        }
        c.run_for(SimDuration::from_secs(30));
    }
    assert_eq!(c.pending(), 0, "seed {seed} failed to quiesce");
    c.merge_component_traces();
    Outcome {
        records: c.trace().records().to_vec(),
        events_delivered: c.events_delivered(),
        images_loaded: c.file_server().stats().images_loaded,
        bytes_read: c.file_server().stats().bytes_read,
        mcast_members: c.net.members(PM_MCAST).len(),
        faults_injected: c.stats.faults_injected,
        series_json: c.series_report().to_json().pretty(),
        sweeps: c.series().sweeps(),
    }
}

/// Two same-seed runs must agree event-for-event; and the comparison must
/// not be vacuous — the runs have to have actually loaded images from the
/// file server and selected hosts through the multicast group.
#[test]
fn same_seed_runs_produce_identical_traces() {
    for seed in [7u64, 1985] {
        let a = run_once(seed);
        let b = run_once(seed);

        // Non-vacuity: the file-server path carried real traffic...
        assert!(a.images_loaded >= 3, "seed {seed}: no image loads traced");
        assert!(a.bytes_read >= 3 * 48 * 1024, "seed {seed}: no file reads");
        // ...and the program-manager multicast group was populated, with
        // the selection round-trip visible as successful remote execs.
        assert!(a.mcast_members >= 2, "seed {seed}: PM group empty");
        let exec_done = a
            .records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::ExecDone { success: true, .. }))
            .count();
        assert!(exec_done >= 3, "seed {seed}: @* selections missing");
        // The loss model actually perturbed the run (the whole point of
        // replaying under randomness).
        assert!(
            a.records
                .iter()
                .any(|r| matches!(r.event, TraceEvent::FrameDropped { .. })),
            "seed {seed}: loss model never fired"
        );

        // Replay equality, the actual regression check.
        assert_eq!(
            a.events_delivered, b.events_delivered,
            "seed {seed}: event counts diverged"
        );
        assert_eq!(
            (a.images_loaded, a.bytes_read),
            (b.images_loaded, b.bytes_read),
            "seed {seed}: file-server stats diverged"
        );
        assert_eq!(
            a.records.len(),
            b.records.len(),
            "seed {seed}: trace lengths diverged"
        );
        for (i, (ra, rb)) in a.records.iter().zip(&b.records).enumerate() {
            assert_eq!(ra, rb, "seed {seed}: trace diverged at record {i}");
        }
    }
}

/// Same seed, same backend: the sampled time-series must serialize
/// byte-identically — the telemetry layer inherits the replay guarantee.
/// The sweeps are driven off the event queue (`SampleTick`), so any
/// nondeterminism in sampling cadence or probe reads diverges here.
#[test]
fn same_seed_runs_produce_identical_series() {
    for queue in [QueueBackend::Heap, QueueBackend::TimingWheel] {
        let a = run_once_on(1985, queue);
        let b = run_once_on(1985, queue);
        // Non-vacuity: sampling actually ran, on the default 1 ms
        // cadence, and captured the default cluster enrollments.
        assert!(
            a.sweeps > 1_000,
            "sampling barely ran ({} sweeps)",
            a.sweeps
        );
        for series in ["queue_depth", "ready_programs", "active_leases"] {
            assert!(
                a.series_json.contains(series),
                "default enrollment `{series}` missing from report"
            );
        }
        assert_eq!(
            a.series_json, b.series_json,
            "{queue:?}: same-seed series artifacts diverged"
        );
    }
}

/// Different seeds must *not* replay identically — otherwise the equality
/// above proves nothing about determinism, only about constancy.
#[test]
fn different_seeds_diverge() {
    let a = run_once(7);
    let b = run_once(8);
    assert_ne!(
        a.records, b.records,
        "different seeds produced identical traces"
    );
}

/// The timing-wheel backend must be a bit-identical drop-in for the heap:
/// one full replay pair, same seed, one run per backend, compared
/// record-for-record. This is the whole-cluster analogue of the queue
/// differential property test in `properties.rs`.
#[test]
fn queue_backends_replay_identically() {
    let heap = run_once_on(1985, QueueBackend::Heap);
    let wheel = run_once_on(1985, QueueBackend::TimingWheel);
    assert_eq!(
        heap.events_delivered, wheel.events_delivered,
        "backends diverged in event counts"
    );
    assert_eq!(
        (heap.images_loaded, heap.bytes_read, heap.mcast_members),
        (wheel.images_loaded, wheel.bytes_read, wheel.mcast_members),
        "backends diverged in cluster outcomes"
    );
    assert_eq!(
        heap.series_json, wheel.series_json,
        "backends diverged in sampled series"
    );
    assert_eq!(
        heap.records.len(),
        wheel.records.len(),
        "backends diverged in trace lengths"
    );
    for (i, (rh, rw)) in heap.records.iter().zip(&wheel.records).enumerate() {
        assert_eq!(rh, rw, "backends diverged at trace record {i}");
    }
}

/// The backend equivalence must also hold with fault plans enabled:
/// reboots, partition heals, corruption-window closes, and fault-point
/// firings all ride the event queue, so a backend that mis-orders them
/// diverges here even if the fault-free replay above stays identical.
#[test]
fn queue_backends_replay_identically_under_fault_plans() {
    for plan in ["crash_storm", "lease_chaos"] {
        let named = || {
            FaultPlan::by_name(plan, 1985, 5, SimDuration::from_secs(30)).expect("known plan name")
        };
        let heap = run_once_with(1985, QueueBackend::Heap, named());
        let wheel = run_once_with(1985, QueueBackend::TimingWheel, named());
        assert!(heap.faults_injected >= 1, "plan {plan}: injected nothing");
        assert_eq!(
            heap.faults_injected, wheel.faults_injected,
            "plan {plan}: backends diverged in fault execution"
        );
        assert_eq!(
            heap.events_delivered, wheel.events_delivered,
            "plan {plan}: backends diverged in event counts"
        );
        assert_eq!(
            heap.records.len(),
            wheel.records.len(),
            "plan {plan}: backends diverged in trace lengths"
        );
        for (i, (rh, rw)) in heap.records.iter().zip(&wheel.records).enumerate() {
            assert_eq!(rh, rw, "plan {plan}: backends diverged at trace record {i}");
        }
    }
}
